//! Shared experiment harness: scenario → simulation → audit.
//!
//! Scenario descriptions live in [`fed_workload::scenario::ScenarioSpec`];
//! this module wires a materialized spec into either engine — the
//! sequential [`Simulation`] or the sharded [`ShardedSimulation`] — for
//! *any* architecture the spec selects, and audits the outcome.
//!
//! Two layers:
//!
//! * **Gossip-specific builders** ([`build_gossip_spec`],
//!   [`build_gossip_cluster`]) keep the protocol's knobs open
//!   ([`GossipConfig`], per-node [`Behavior`]) for the experiments that
//!   study the fair protocol itself.
//! * **The architecture-generic runner** ([`run_architecture`]) executes
//!   whatever [`Architecture`] the spec names — fair/static gossip or any
//!   of the structured baselines — on either engine and returns an
//!   engine-agnostic [`ArchOutcome`]. Every node type plugs in through
//!   [`ArchProtocol`], which phrases the workload as commands and reads
//!   the observables (delivery log, fairness ledger) back out.
//!
//! Both engines are driven through one scheduling path, so for the same
//! spec the results are bit-for-bit comparable regardless of engine or
//! shard count — asserted by the `cross_engine` integration tests.

use fed_baselines::broker::{BrokerCmd, BrokerNode};
use fed_baselines::common::DeliveryLog;
use fed_baselines::dam::{DamCmd, DamConfig, DamNode, GroupTable};
use fed_baselines::dks::{DksCmd, DksConfig, DksNode};
use fed_baselines::hybrid::{HybridCmd, HybridConfig, HybridNode};
use fed_baselines::scribe::{ScribeCmd, ScribeNode};
use fed_baselines::splitstream::{Forest, SplitStreamNode, StripeCmd};
use fed_cluster::{ScheduleTrace, ShardMap, ShardedSimulation, WindowPolicy};
use fed_core::behavior::Behavior;
use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed_core::ledger::FairnessLedger;
use fed_dht::DhtNetwork;
use fed_membership::swim::{SwimObservation, SwimObservationKind};
use fed_membership::FullMembership;
use fed_metrics::delivery::DeliveryAudit;
use fed_profile::{
    CountingProbe, RunProfile, ScheduleSummary, ShardProfile, WindowSlice, WorkCounters,
};
use fed_pubsub::{Event, EventId, TopicId, TopicSpace};
use fed_sim::exec::{Profiler, Tracer};
use fed_sim::{HopRecord, NodeId, Protocol, SimDuration, SimTime, Simulation, TransportStats};
use fed_telemetry::membership::{DetectorEvent, DetectorEventKind, MembershipSeries};
use fed_telemetry::{ShardCollector, TelemetrySeries};
use fed_trace::{merge_hops, ShardTraceBuffer};
use fed_util::rng::Xoshiro256StarStar;
use fed_workload::churn::{downtime_intervals, ChurnAction, ChurnEvent};
use fed_workload::interest::InterestProfile;
use fed_workload::pubs::Publication;
use fed_workload::scenario::{Architecture, MaterializedScenario, Placement, ScenarioSpec};
use std::sync::Arc;

/// Expected per-node event-count profile of a materialized scenario:
/// subscription counts proxy deliveries and forwarding work, scheduled
/// publications proxy sends. This is the weight profile behind the
/// [`Placement::Balanced`] shard assignment.
pub fn event_weights(materialized: &MaterializedScenario) -> Vec<u64> {
    let mut weights: Vec<u64> = (0..materialized.profile.len())
        .map(|i| 1 + 4 * materialized.profile.topics_of(i).len() as u64)
        .collect();
    for p in &materialized.schedule {
        if let Some(w) = weights.get_mut(p.publisher) {
            *w += 8;
        }
    }
    weights
}

/// Maps a spec's scheduler knobs onto the cluster's [`ShardMap`].
fn shard_map_for(spec: &ScenarioSpec, materialized: &MaterializedScenario) -> ShardMap {
    match spec.placement {
        Placement::RoundRobin => ShardMap::round_robin(spec.n, spec.shards),
        Placement::Block => ShardMap::block(spec.n, spec.shards),
        Placement::Balanced => ShardMap::balanced(&event_weights(materialized), spec.shards),
    }
}

/// Maps a spec's window knob onto the cluster's [`WindowPolicy`].
fn window_policy_for(spec: &ScenarioSpec) -> WindowPolicy {
    if spec.adaptive_window {
        WindowPolicy::adaptive()
    } else {
        WindowPolicy::fixed()
    }
}

/// The node type every gossip experiment runs.
pub type Node = GossipNode<FullMembership>;

/// The gossip round period shared by the architecture-generic runs.
const ROUND: SimDuration = SimDuration::from_millis(100);

/// Uniform driver interface over every architecture's node type: how the
/// workload is phrased as commands, and how the observables are read back.
///
/// Implementing this is all it takes for a protocol to run on both
/// engines through [`run_architecture`] and the cross-engine parity
/// suite.
pub trait ArchProtocol: Protocol {
    /// The command subscribing this node to `topic`.
    fn subscribe_cmd(topic: TopicId) -> Self::Cmd;
    /// The command publishing `event` at this node.
    fn publish_cmd(event: Event) -> Self::Cmd;
    /// The node's fairness ledger (owned: composite architectures
    /// synthesize a merged ledger on demand).
    fn fairness(&self) -> FairnessLedger;
    /// Snapshot of the node's delivery log, sorted by event id.
    fn delivery_log(&self) -> Vec<(EventId, SimTime)>;
    /// The node's SWIM failure-detector observation log, when it runs
    /// one (empty otherwise).
    fn swim_observations(&self) -> Vec<SwimObservation> {
        Vec::new()
    }
    /// When the node switched dissemination strategy, for architectures
    /// with runtime handover (`None` otherwise).
    fn handover_at(&self) -> Option<SimTime> {
        None
    }
}

/// Sorted snapshot of a baseline [`DeliveryLog`].
fn snapshot_log(log: &DeliveryLog) -> Vec<(EventId, SimTime)> {
    let mut v: Vec<(EventId, SimTime)> = log.iter().collect();
    v.sort_unstable_by_key(|&(id, _)| id);
    v
}

impl ArchProtocol for Node {
    fn subscribe_cmd(topic: TopicId) -> GossipCmd {
        GossipCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> GossipCmd {
        GossipCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        let mut v: Vec<(EventId, SimTime)> = self
            .deliveries()
            .iter()
            .map(|(&id, rec)| (id, rec.at))
            .collect();
        v.sort_unstable_by_key(|&(id, _)| id);
        v
    }
    fn swim_observations(&self) -> Vec<SwimObservation> {
        GossipNode::swim_observations(self)
    }
}

impl ArchProtocol for HybridNode {
    fn subscribe_cmd(topic: TopicId) -> HybridCmd {
        HybridCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> HybridCmd {
        HybridCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.merged_ledger()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        self.merged_deliveries()
    }
    fn swim_observations(&self) -> Vec<SwimObservation> {
        HybridNode::swim_observations(self)
    }
    fn handover_at(&self) -> Option<SimTime> {
        self.switched_at()
    }
}

impl ArchProtocol for BrokerNode {
    fn subscribe_cmd(topic: TopicId) -> BrokerCmd {
        BrokerCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> BrokerCmd {
        BrokerCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        snapshot_log(self.deliveries())
    }
}

impl ArchProtocol for ScribeNode {
    fn subscribe_cmd(topic: TopicId) -> ScribeCmd {
        ScribeCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> ScribeCmd {
        ScribeCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        snapshot_log(self.deliveries())
    }
}

impl ArchProtocol for DksNode {
    fn subscribe_cmd(topic: TopicId) -> DksCmd {
        DksCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> DksCmd {
        DksCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        snapshot_log(self.deliveries())
    }
}

impl ArchProtocol for DamNode {
    fn subscribe_cmd(topic: TopicId) -> DamCmd {
        DamCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> DamCmd {
        DamCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        snapshot_log(self.deliveries())
    }
}

impl ArchProtocol for SplitStreamNode {
    fn subscribe_cmd(topic: TopicId) -> StripeCmd {
        StripeCmd::SubscribeTopic(topic)
    }
    fn publish_cmd(event: Event) -> StripeCmd {
        StripeCmd::Publish(event)
    }
    fn fairness(&self) -> FairnessLedger {
        self.ledger().clone()
    }
    fn delivery_log(&self) -> Vec<(EventId, SimTime)> {
        snapshot_log(self.deliveries())
    }
}

/// Minimal scheduling facade over the two engines, generic over the
/// protocol.
trait Engine<P: Protocol> {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd);
    fn crash(&mut self, at: SimTime, node: NodeId);
    fn join(&mut self, at: SimTime, node: NodeId);
}

impl<P: Protocol> Engine<P> for Simulation<P> {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        self.schedule_command(at, node, cmd);
    }
    fn crash(&mut self, at: SimTime, node: NodeId) {
        self.schedule_crash(at, node);
    }
    fn join(&mut self, at: SimTime, node: NodeId) {
        self.schedule_join(at, node);
    }
}

impl<P: Protocol> Engine<P> for ShardedSimulation<P> {
    fn command(&mut self, at: SimTime, node: NodeId, cmd: P::Cmd) {
        self.schedule_command(at, node, cmd);
    }
    fn crash(&mut self, at: SimTime, node: NodeId) {
        self.schedule_crash(at, node);
    }
    fn join(&mut self, at: SimTime, node: NodeId) {
        self.schedule_join(at, node);
    }
}

/// Schedules the materialized workload onto any engine, in the canonical
/// order: subscriptions, publications, then churn.
///
/// Both engines must see the same `schedule_*` call order — the external
/// event sequence number participates in the deterministic event order.
fn schedule_workload<P, E>(sim: &mut E, materialized: &MaterializedScenario)
where
    P: ArchProtocol,
    E: Engine<P>,
{
    for i in 0..materialized.profile.len() {
        for &topic in materialized.profile.topics_of(i) {
            sim.command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                P::subscribe_cmd(topic),
            );
        }
    }
    for p in &materialized.schedule {
        sim.command(
            p.at,
            NodeId::new(p.publisher as u32),
            P::publish_cmd(p.event.clone()),
        );
    }
    for c in &materialized.churn {
        match c.action {
            ChurnAction::Crash => sim.crash(c.at, NodeId::new(c.node as u32)),
            ChurnAction::Join => sim.join(c.at, NodeId::new(c.node as u32)),
        }
    }
}

/// A prepared run: simulation with workload wired in, plus ground truth.
pub struct GossipRun {
    /// The simulation (not yet executed).
    pub sim: Simulation<Node>,
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl GossipRun {
    /// Runs to the scenario horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon;
        self.sim.run_until(horizon);
    }

    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (id, node) in self.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        audit
    }

    /// Ledgers of all nodes in id order.
    pub fn ledgers(&self) -> Vec<&FairnessLedger> {
        self.sim.nodes().map(|(_, n)| n.ledger()).collect()
    }
}

/// Builds a sequential gossip run straight from a [`ScenarioSpec`],
/// honouring its churn plan — the sequential twin of
/// [`build_gossip_cluster`] (`spec.shards` is ignored here).
pub fn build_gossip_spec<B>(spec: &ScenarioSpec, config: GossipConfig, behavior: B) -> GossipRun
where
    B: Fn(NodeId) -> Behavior + 'static,
{
    let materialized = spec
        .materialize()
        .expect("scenario parameters are validated by construction");
    let n = spec.n;
    let mut sim = Simulation::new(n, spec.effective_net(), spec.seed, move |id, _| {
        GossipNode::with_behavior(id, config.clone(), FullMembership::new(id, n), behavior(id))
    });
    schedule_workload(&mut sim, &materialized);
    GossipRun {
        sim,
        profile: materialized.profile,
        schedule: materialized.schedule,
        horizon: materialized.horizon,
    }
}

/// A prepared sharded run: cluster with workload wired in, plus ground
/// truth. The sharded twin of [`GossipRun`].
pub struct ClusterGossipRun {
    /// The sharded simulation (not yet executed).
    pub sim: ShardedSimulation<Node>,
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl ClusterGossipRun {
    /// Runs to the scenario horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon;
        self.sim.run_until(horizon);
    }

    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (id, node) in self.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        audit
    }

    /// Ledgers of all nodes in id order.
    pub fn ledgers(&self) -> Vec<&FairnessLedger> {
        self.sim.nodes().map(|(_, n)| n.ledger()).collect()
    }
}

/// Builds a sharded gossip run from a [`ScenarioSpec`] (shard count,
/// churn plan and all).
///
/// For the same spec (and scheduling order), the results are bit-for-bit
/// identical to [`build_gossip_spec`] regardless of `spec.shards` — asserted
/// by the `cross_engine` integration test.
pub fn build_gossip_cluster<B>(
    spec: &ScenarioSpec,
    config: GossipConfig,
    behavior: B,
) -> ClusterGossipRun
where
    B: Fn(NodeId) -> Behavior + Send + Sync + 'static,
{
    let materialized = spec
        .materialize()
        .expect("scenario parameters are validated by construction");
    let n = spec.n;
    let mut sim = ShardedSimulation::with_scheduler(
        n,
        spec.effective_net(),
        spec.seed,
        shard_map_for(spec, &materialized),
        window_policy_for(spec),
        move |id, _| {
            GossipNode::with_behavior(id, config.clone(), FullMembership::new(id, n), behavior(id))
        },
    );
    schedule_workload(&mut sim, &materialized);
    ClusterGossipRun {
        sim,
        profile: materialized.profile,
        schedule: materialized.schedule,
        horizon: materialized.horizon,
    }
}

/// Which engine executes a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The sequential [`Simulation`].
    Sequential,
    /// The sharded [`ShardedSimulation`] at the spec's shard count.
    Cluster,
}

/// Engine-agnostic observable outcome of one architecture run.
///
/// Everything here is plain data copied out of the finished simulation,
/// so outcomes from different engines (or shard counts) compare with
/// `==` field by field: identical `deliveries`, `ledgers` and `stats`
/// mean the two runs performed the same virtual-world execution.
#[derive(Debug, Clone)]
pub struct ArchOutcome {
    /// The architecture that ran.
    pub arch: Architecture,
    /// Who subscribes to what (ground truth).
    pub profile: InterestProfile,
    /// Scheduled publications (ground truth).
    pub schedule: Vec<Publication>,
    /// Per-node delivery logs, indexed by node id, sorted by event id.
    pub deliveries: Vec<Vec<(EventId, SimTime)>>,
    /// Per-node fairness ledgers, indexed by node id.
    pub ledgers: Vec<FairnessLedger>,
    /// Per-node transport statistics, indexed by node id.
    pub stats: Vec<TransportStats>,
    /// Events processed by the engine.
    pub events: u64,
    /// Barrier windows executed (0 on the sequential engine).
    pub windows: u64,
    /// Shards actually in use (the engine clamps to `1..=n`; always 1 on
    /// the sequential engine).
    pub shards: usize,
    /// Streaming telemetry series, when the spec enabled it.
    ///
    /// Byte-identical across engines and shard counts for the same spec
    /// (asserted by the `telemetry_parity` integration suite).
    pub telemetry: Option<TelemetrySeries>,
    /// Scheduler profile, when the spec enabled `[profile]`.
    ///
    /// Its [`RunProfile::merged_work`] counters are partition-invariant
    /// (gated by the `profile_parity` integration suite); the wall-clock
    /// phase timings are host measurements and intentionally excluded
    /// from [`crate::scenario_run::outcomes_match`].
    pub profiling: Option<RunProfile>,
    /// Merged per-event hop trace, when the spec enabled `[trace]`.
    ///
    /// Already in the canonical (sorted) order, so traces from different
    /// engines or shard counts compare with `==`: byte-identical for the
    /// same spec (gated by the `trace_parity` integration suite).
    pub trace: Option<Vec<HopRecord>>,
    /// Per-node SWIM failure-detector observation logs, indexed by node
    /// id; all empty unless the spec enabled `[membership]` on an
    /// architecture that runs the detector.
    ///
    /// Deterministic data, byte-identical across engines and shard
    /// counts (asserted by the parity suites).
    pub swim: Vec<Vec<SwimObservation>>,
    /// Per-node strategy-handover instants, indexed by node id; all
    /// `None` except for architectures with runtime switching
    /// ([`Architecture::Hybrid`]).
    pub handovers: Vec<Option<SimTime>>,
    /// The scenario's churn trace (ground truth for detection telemetry).
    pub churn: Vec<ChurnEvent>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl ArchOutcome {
    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (node, log) in self.deliveries.iter().enumerate() {
            for &(eid, at) in log {
                audit.record(eid, node, at);
            }
        }
        audit
    }

    /// Total deliveries across all nodes.
    pub fn total_deliveries(&self) -> usize {
        self.deliveries.iter().map(Vec::len).sum()
    }

    /// Earliest strategy handover across all nodes, when one happened.
    pub fn handover_time(&self) -> Option<SimTime> {
        self.handovers.iter().flatten().min().copied()
    }

    /// Total SWIM observations across all nodes.
    pub fn total_swim_observations(&self) -> usize {
        self.swim.iter().map(Vec::len).sum()
    }

    /// Folds the run's SWIM observation logs against the churn ground
    /// truth into the per-window detection series (detection latency,
    /// false suspicions, refutation waves).
    ///
    /// Purely derived from deterministic outcome data, so two outcomes
    /// with identical `swim` logs produce identical series.
    pub fn membership_series(&self, window: SimDuration) -> MembershipSeries {
        let mut events: Vec<DetectorEvent> = Vec::new();
        for (observer, log) in self.swim.iter().enumerate() {
            for o in log {
                events.push(DetectorEvent {
                    at: o.at,
                    observer,
                    subject: o.subject.index(),
                    kind: match o.kind {
                        SwimObservationKind::Suspect => DetectorEventKind::Suspect,
                        SwimObservationKind::Confirm => DetectorEventKind::Confirm,
                        SwimObservationKind::Refute => DetectorEventKind::Refute,
                        SwimObservationKind::SelfRefute => DetectorEventKind::SelfRefute,
                    },
                });
            }
        }
        events.sort_by_key(|e| (e.at, e.observer, e.subject));
        let downtime = downtime_intervals(&self.churn, self.horizon);
        MembershipSeries::build(window, self.horizon, &events, &downtime)
    }
}

/// Builds the per-topic group table the DKS and DAM baselines take as
/// static input: each topic's group is exactly its subscriber set.
pub fn groups_of(profile: &InterestProfile) -> GroupTable {
    let mut groups = GroupTable::new();
    for t in 0..profile.num_topics() {
        let topic = TopicId::new(t as u32);
        let members: Vec<NodeId> = profile
            .subscribers_of(topic)
            .into_iter()
            .map(|i| NodeId::new(i as u32))
            .collect();
        if !members.is_empty() {
            groups.insert(topic, members);
        }
    }
    groups
}

/// Runs the spec's architecture on the chosen engine to the scenario
/// horizon and returns the observable outcome.
///
/// The gossip variants run the T-ARCH comparison configuration
/// (`fair`/`classic` with fanout 8, view 16, 100 ms rounds) — note this
/// supersedes the fanout-4 config the E-SCALE sweep used before it went
/// architecture-generic, so absolute event counts differ from pre-PR-2
/// recordings.
///
/// Shared infrastructure (DHT routing tables, group tables, the
/// SplitStream forest) is built deterministically from the spec before
/// the engine starts and handed to every node behind an `Arc`; it is
/// immutable for the whole run, which is what makes it safe to share
/// across shard threads without perturbing determinism.
pub fn run_architecture(spec: &ScenarioSpec, engine: EngineKind) -> ArchOutcome {
    let materialized = spec
        .materialize()
        .expect("scenario parameters are validated by construction");
    let n = spec.n;
    // The spec's `[membership]` section arms the SWIM detector inside
    // every gossip stack the chosen architecture runs.
    let with_membership = |config: GossipConfig| match &spec.membership {
        Some(swim) => config.with_swim(swim.clone()),
        None => config,
    };
    match spec.arch {
        Architecture::FairGossip => {
            let config = with_membership(GossipConfig::fair(8, 16, ROUND));
            execute(spec, materialized, engine, move |id, _| {
                GossipNode::with_behavior(
                    id,
                    config.clone(),
                    FullMembership::new(id, n),
                    Behavior::Honest,
                )
            })
        }
        Architecture::StaticGossip => {
            let config = with_membership(GossipConfig::classic(8, 16, ROUND));
            execute(spec, materialized, engine, move |id, _| {
                GossipNode::with_behavior(
                    id,
                    config.clone(),
                    FullMembership::new(id, n),
                    Behavior::Honest,
                )
            })
        }
        Architecture::Broker => execute(spec, materialized, engine, |id, _| {
            BrokerNode::new(id, NodeId::new(0))
        }),
        Architecture::Scribe => {
            let dht = Arc::new(DhtNetwork::build(n));
            execute(spec, materialized, engine, move |id, _| {
                ScribeNode::new(id, Arc::clone(&dht))
            })
        }
        Architecture::Dks => {
            let dht = Arc::new(DhtNetwork::build(n));
            let groups = Arc::new(groups_of(&materialized.profile));
            let cfg = DksConfig {
                group_fanout: 5,
                seeds: 3,
            };
            execute(spec, materialized, engine, move |id, _| {
                DksNode::new(id, cfg, Arc::clone(&dht), Arc::clone(&groups))
            })
        }
        Architecture::Dam => {
            let groups = Arc::new(groups_of(&materialized.profile));
            let space = Arc::new(TopicSpace::flat(spec.num_topics));
            execute(spec, materialized, engine, move |id, _| {
                DamNode::new(
                    id,
                    DamConfig::default(),
                    Arc::clone(&groups),
                    Arc::clone(&space),
                )
            })
        }
        Architecture::SplitStream => {
            let forest = Arc::new(Forest::build(n, 8, 8));
            execute(spec, materialized, engine, move |id, _| {
                SplitStreamNode::new(id, Arc::clone(&forest))
            })
        }
        Architecture::Hybrid => {
            let mut config = HybridConfig::standard();
            config.gossip = with_membership(config.gossip);
            execute(spec, materialized, engine, move |id, _| {
                HybridNode::new(id, n, config.clone())
            })
        }
    }
}

/// Engine-neutral copy of the coordinator's schedule trace, so
/// `fed-profile` (and everything reading a [`RunProfile`]) stays
/// independent of the cluster runtime.
fn schedule_summary(trace: &ScheduleTrace) -> ScheduleSummary {
    ScheduleSummary {
        windows: trace
            .windows
            .iter()
            .map(|w| WindowSlice {
                index: w.index,
                start_us: w.start.as_micros(),
                end_us: w
                    .ends
                    .iter()
                    .map(|e| e.as_micros())
                    .max()
                    .unwrap_or_else(|| w.start.as_micros()),
                straggler: w.straggler,
                events: w.events.iter().sum(),
                wall_ns: w.wall_ns,
            })
            .collect(),
        straggler_windows: trace.straggler_windows.clone(),
    }
}

/// One shard's partition-invariant work counters, assembled from its
/// profiler's event count and the transport stats of the nodes it owns.
///
/// Queue pushes/pops live on the engine's queues, not here — they stay
/// zero per shard and [`RunProfile::merged_work`] fills the merged totals
/// from the engine's [`fed_sim::exec::QueueStats`].
fn work_counters(
    stats: &[TransportStats],
    owned: impl Iterator<Item = u32>,
    events: u64,
    probe_calls: u64,
) -> WorkCounters {
    let mut w = WorkCounters {
        events,
        probe_calls,
        ..WorkCounters::default()
    };
    for id in owned {
        let s = &stats[id as usize];
        w.msgs_sent += s.msgs_sent;
        w.msgs_received += s.msgs_received;
        w.msgs_lost += s.msgs_lost;
        w.bytes_sent += s.bytes_sent;
    }
    w
}

/// Monomorphic worker behind [`run_architecture`]: builds the chosen
/// engine with `factory`, schedules the workload, runs to the horizon and
/// collects the outcome.
fn execute<P, F>(
    spec: &ScenarioSpec,
    materialized: MaterializedScenario,
    engine: EngineKind,
    factory: F,
) -> ArchOutcome
where
    P: ArchProtocol + Send,
    P::Msg: Send,
    P::Cmd: Send,
    F: Fn(NodeId, &mut Xoshiro256StarStar) -> P + Send + Sync + 'static,
{
    let horizon = materialized.horizon;
    let profiling = spec.profile.is_some();
    let tracing = spec.trace.is_some();
    match engine {
        EngineKind::Sequential => {
            let mut sim = Simulation::new(spec.n, spec.effective_net(), spec.seed, factory);
            schedule_workload(&mut sim, &materialized);
            let mut shard_profile = profiling.then(ShardProfile::default);
            let mut tracer = spec.trace.as_ref().map(ShardTraceBuffer::new);
            let run_start = profiling.then(std::time::Instant::now);
            let (telemetry, probe_calls) = match spec.telemetry {
                Some(t) => {
                    let mut collector = CountingProbe::new(ShardCollector::sequential(t, spec.n));
                    sim.run_instrumented(
                        horizon,
                        Some(&mut collector),
                        shard_profile.as_mut().map(|p| p as &mut dyn Profiler),
                        tracer.as_mut().map(|b| b as &mut dyn Tracer),
                    );
                    (Some(collector.inner.finalize(horizon)), collector.calls)
                }
                None if profiling || tracing => {
                    sim.run_instrumented(
                        horizon,
                        None,
                        shard_profile.as_mut().map(|p| p as &mut dyn Profiler),
                        tracer.as_mut().map(|b| b as &mut dyn Tracer),
                    );
                    (None, 0)
                }
                None => {
                    sim.run_until(horizon);
                    (None, 0)
                }
            };
            // The single sequential buffer still goes through the merge
            // so both engines expose the identical canonical ordering.
            let trace_hops = tracer.map(|b| merge_hops([b]));
            let wall_ns = run_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let stats = sim.transport_stats_all().to_vec();
            let events = sim.events_processed();
            let profile = shard_profile.map(|shard| RunProfile {
                work: vec![work_counters(
                    &stats,
                    0..spec.n as u32,
                    shard.events,
                    probe_calls,
                )],
                shards: vec![shard],
                queue: sim.queue_stats(),
                schedule: None,
                wall_ns,
            });
            collect(
                spec,
                materialized,
                sim.nodes(),
                stats,
                events,
                0,
                1,
                telemetry,
                profile,
                trace_hops,
            )
        }
        EngineKind::Cluster => {
            let map = shard_map_for(spec, &materialized);
            let num_shards = map.num_shards();
            let owned: Option<Vec<Vec<u32>>> =
                profiling.then(|| (0..num_shards).map(|s| map.owned(s).to_vec()).collect());
            // One shard-local collector per worker, built from the same
            // owned lists the kernels get; merged (exactly) after the
            // run into the global series. The counting wrapper feeds the
            // profiler's `probe_calls` work counter and forwards
            // everything unchanged.
            let mut collectors: Vec<CountingProbe<ShardCollector>> = match spec.telemetry {
                Some(t) => (0..num_shards)
                    .map(|s| CountingProbe::new(ShardCollector::new(t, spec.n, map.owned(s))))
                    .collect(),
                None => Vec::new(),
            };
            let mut profilers: Vec<ShardProfile> = if profiling {
                vec![ShardProfile::default(); num_shards]
            } else {
                Vec::new()
            };
            // One shard-local trace buffer per worker; each hop is
            // recorded on the shard owning the sender, and the merge
            // restores the canonical global order exactly.
            let mut tracers: Vec<ShardTraceBuffer> = match &spec.trace {
                Some(t) => (0..num_shards).map(|_| ShardTraceBuffer::new(t)).collect(),
                None => Vec::new(),
            };
            let mut trace = profiling.then(ScheduleTrace::default);
            let mut sim = ShardedSimulation::with_scheduler(
                spec.n,
                spec.effective_net(),
                spec.seed,
                map,
                window_policy_for(spec),
                factory,
            );
            schedule_workload(&mut sim, &materialized);
            let run_start = profiling.then(std::time::Instant::now);
            if collectors.is_empty() && !profiling && !tracing {
                sim.run_until(horizon);
            } else {
                sim.run_until_instrumented(
                    horizon,
                    &mut collectors,
                    &mut profilers,
                    &mut tracers,
                    trace.as_mut(),
                );
            }
            let wall_ns = run_start.map_or(0, |t| t.elapsed().as_nanos() as u64);
            let probe_calls: Vec<u64> = collectors.iter().map(|c| c.calls).collect();
            let telemetry = if collectors.is_empty() {
                None
            } else {
                let mut merged: Option<TelemetrySeries> = None;
                for series in collectors.drain(..).map(|c| c.inner.finalize(horizon)) {
                    match merged.as_mut() {
                        None => merged = Some(series),
                        Some(m) => m.merge(&series),
                    }
                }
                merged
            };
            let stats = sim.transport_stats_all();
            let events = sim.events_processed();
            let windows = sim.windows();
            let shards = sim.num_shards();
            let profile = owned.map(|owned| RunProfile {
                work: (0..num_shards)
                    .map(|s| {
                        work_counters(
                            &stats,
                            owned[s].iter().copied(),
                            profilers[s].events,
                            probe_calls.get(s).copied().unwrap_or(0),
                        )
                    })
                    .collect(),
                shards: std::mem::take(&mut profilers),
                queue: sim.queue_stats(),
                schedule: trace.as_ref().map(schedule_summary),
                wall_ns,
            });
            let trace_hops = if tracers.is_empty() {
                None
            } else {
                Some(merge_hops(tracers))
            };
            collect(
                spec,
                materialized,
                sim.nodes(),
                stats,
                events,
                windows,
                shards,
                telemetry,
                profile,
                trace_hops,
            )
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn collect<'a, P>(
    spec: &ScenarioSpec,
    materialized: MaterializedScenario,
    nodes: impl Iterator<Item = (NodeId, &'a P)>,
    stats: Vec<TransportStats>,
    events: u64,
    windows: u64,
    shards: usize,
    telemetry: Option<TelemetrySeries>,
    profiling: Option<RunProfile>,
    trace: Option<Vec<HopRecord>>,
) -> ArchOutcome
where
    P: ArchProtocol + 'a,
{
    let mut deliveries = vec![Vec::new(); spec.n];
    let mut ledgers = vec![FairnessLedger::new(); spec.n];
    let mut swim = vec![Vec::new(); spec.n];
    let mut handovers = vec![None; spec.n];
    for (id, node) in nodes {
        deliveries[id.index()] = node.delivery_log();
        ledgers[id.index()] = node.fairness();
        swim[id.index()] = node.swim_observations();
        handovers[id.index()] = node.handover_at();
    }
    ArchOutcome {
        arch: spec.arch,
        profile: materialized.profile,
        schedule: materialized.schedule,
        deliveries,
        ledgers,
        stats,
        events,
        windows,
        shards,
        telemetry,
        profiling,
        trace,
        swim,
        handovers,
        churn: materialized.churn,
        horizon: materialized.horizon,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_core::ledger::RatioSpec;

    #[test]
    fn standard_scenario_runs_and_audits() {
        let spec = ScenarioSpec::fair_gossip(32, 11);
        let cfg = GossipConfig::classic(5, 16, SimDuration::from_millis(100));
        let mut run = build_gossip_spec(&spec, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        assert!(audit.num_events() > 0);
        assert!(audit.reliability() > 0.99, "r={}", audit.reliability());
        assert_eq!(audit.spurious(), 0);
        let ledgers = run.ledgers();
        assert_eq!(ledgers.len(), 32);
        let spec = RatioSpec::topic_based();
        assert!(ledgers.iter().any(|l| l.contribution(&spec) > 0.0));
    }

    #[test]
    fn deterministic_across_builds() {
        let spec = ScenarioSpec::fair_gossip(16, 5);
        let cfg = GossipConfig::classic(4, 16, SimDuration::from_millis(100));
        let r1 = {
            let mut run = build_gossip_spec(&spec, cfg.clone(), |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        let r2 = {
            let mut run = build_gossip_spec(&spec, cfg, |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        assert_eq!(r1, r2);
    }

    /// Every architecture runs end to end through the generic runner on
    /// the sequential engine and delivers something.
    #[test]
    fn every_architecture_runs_and_delivers() {
        for arch in Architecture::ALL {
            let spec = ScenarioSpec::standard(arch, 24, 7);
            let outcome = run_architecture(&spec, EngineKind::Sequential);
            assert_eq!(outcome.arch, arch);
            assert_eq!(outcome.deliveries.len(), 24);
            assert_eq!(outcome.ledgers.len(), 24);
            assert_eq!(outcome.stats.len(), 24);
            assert!(outcome.events > 0, "{arch}: no events processed");
            assert!(outcome.total_deliveries() > 0, "{arch}: dead scenario");
            assert_eq!(outcome.windows, 0, "sequential engine has no barriers");
        }
    }

    /// Enabling `[profile]` perturbs nothing, and the merged work
    /// counters are partition-invariant across the engines — the
    /// `profile_parity` suite sweeps this wider.
    #[test]
    fn profiling_is_passive_and_partition_invariant() {
        let base = ScenarioSpec::standard(Architecture::FairGossip, 24, 7)
            .with_telemetry(fed_telemetry::TelemetrySpec::default());
        let spec = base
            .clone()
            .with_profile(fed_profile::ProfileSpec::default());
        let plain = run_architecture(&base, EngineKind::Sequential);
        let seq = run_architecture(&spec, EngineKind::Sequential);
        assert!(plain.profiling.is_none(), "off unless the spec asks");
        assert_eq!(plain.deliveries, seq.deliveries, "profiling is passive");
        assert_eq!(plain.telemetry, seq.telemetry);
        let p = seq.profiling.as_ref().expect("profiling on");
        assert_eq!(p.shards.len(), 1);
        assert!(p.schedule.is_none(), "no windows on the sequential engine");
        let work = p.merged_work();
        assert_eq!(work.events, seq.events);
        assert!(work.probe_calls > 0, "telemetry hooks counted");
        assert!(work.queue_pops > 0 && work.queue_pushes >= work.queue_pops);
        let clu = run_architecture(&spec.with_shards(3), EngineKind::Cluster);
        let q = clu.profiling.as_ref().expect("profiling on");
        assert_eq!(q.shards.len(), 3);
        assert_eq!(work, q.merged_work(), "work counters partition-invariant");
        let schedule = q.schedule.as_ref().expect("cluster schedule traced");
        assert_eq!(schedule.windows.len() as u64, clu.windows);
        assert_eq!(
            schedule.straggler_windows.iter().sum::<u64>(),
            clu.windows,
            "every window has exactly one straggler"
        );
    }

    /// The generic runner's sequential path and the dedicated gossip
    /// builder agree — the runner is a façade, not a fork.
    #[test]
    fn generic_runner_matches_gossip_builder() {
        let spec = ScenarioSpec::fair_gossip(16, 3);
        let outcome = run_architecture(&spec, EngineKind::Sequential);
        let mut run = build_gossip_spec(&spec, GossipConfig::fair(8, 16, ROUND), |_| {
            Behavior::Honest
        });
        run.run();
        let builder_deliveries: usize = run.sim.nodes().map(|(_, n)| n.deliveries().len()).sum();
        assert_eq!(outcome.total_deliveries(), builder_deliveries);
        assert_eq!(outcome.events, run.sim.events_processed());
    }
}
