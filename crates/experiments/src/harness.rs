//! Shared experiment harness: scenario → simulation → audit.

use fed_core::behavior::Behavior;
use fed_core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed_core::ledger::FairnessLedger;
use fed_membership::FullMembership;
use fed_metrics::delivery::DeliveryAudit;
use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{NodeId, SimDuration, SimTime, Simulation};
use fed_util::rng::Xoshiro256StarStar;
use fed_workload::interest::{Appetite, InterestProfile};
use fed_workload::pubs::{generate_schedule, PubPlan, Publication};

/// The node type every gossip experiment runs.
pub type Node = GossipNode<FullMembership>;

/// A complete gossip scenario description.
#[derive(Debug, Clone)]
pub struct GossipScenario {
    /// Population size.
    pub n: usize,
    /// Topic universe size.
    pub num_topics: usize,
    /// Topic popularity skew for subscriptions.
    pub zipf_s: f64,
    /// Per-node subscription appetite.
    pub appetite: Appetite,
    /// Publication plan.
    pub plan: PubPlan,
    /// Master seed.
    pub seed: u64,
    /// Network model.
    pub net: NetworkModel,
}

impl GossipScenario {
    /// A sensible default: heterogeneous interest over a Zipf topic
    /// universe with a steady publication stream.
    pub fn standard(n: usize, seed: u64) -> Self {
        GossipScenario {
            n,
            num_topics: 20,
            zipf_s: 1.0,
            appetite: Appetite::Bimodal {
                heavy_fraction: 0.2,
                heavy: 8,
                light: 1,
            },
            plan: PubPlan {
                rate_per_sec: 20.0,
                duration: SimTime::from_secs(20),
                topic_zipf_s: 1.0,
                payload_bytes: 64,
                warmup: SimTime::from_secs(2),
            },
            seed,
            net: NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10))),
        }
    }

    /// End of the publication phase plus a drain margin.
    pub fn horizon(&self) -> SimTime {
        // TTL drain: 8 rounds of 100ms plus latency slack.
        SimTime::from_micros(
            self.plan.warmup.as_micros() + self.plan.duration.as_micros() + 4_000_000,
        )
    }
}

/// A prepared run: simulation with workload wired in, plus ground truth.
pub struct GossipRun {
    /// The simulation (not yet executed).
    pub sim: Simulation<Node>,
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Scenario horizon.
    pub horizon: SimTime,
}

impl GossipRun {
    /// Runs to the scenario horizon.
    pub fn run(&mut self) {
        let horizon = self.horizon;
        self.sim.run_until(horizon);
    }

    /// Builds the delivery audit from ground truth and observed state.
    pub fn audit(&self) -> DeliveryAudit {
        let mut audit = DeliveryAudit::new();
        for p in &self.schedule {
            audit.expect(
                p.event.id(),
                p.at,
                self.profile.subscribers_of(p.event.topic()),
            );
        }
        for (id, node) in self.sim.nodes() {
            for (eid, rec) in node.deliveries() {
                audit.record(*eid, id.index(), rec.at);
            }
        }
        audit
    }

    /// Ledgers of all nodes in id order.
    pub fn ledgers(&self) -> Vec<&FairnessLedger> {
        self.sim.nodes().map(|(_, n)| n.ledger()).collect()
    }
}

/// Builds a gossip run; `behavior` assigns a behaviour model per node.
pub fn build_gossip<B>(scenario: &GossipScenario, config: GossipConfig, behavior: B) -> GossipRun
where
    B: Fn(NodeId) -> Behavior + 'static,
{
    let mut rng = Xoshiro256StarStar::seed_from_u64(scenario.seed);
    let profile = InterestProfile::generate(
        &mut rng,
        scenario.n,
        scenario.num_topics,
        scenario.zipf_s,
        scenario.appetite,
    )
    .expect("scenario parameters are validated by construction");
    let schedule = generate_schedule(&mut rng, scenario.n, scenario.num_topics, &scenario.plan)
        .expect("scenario parameters are validated by construction");
    let n = scenario.n;
    let mut sim = Simulation::new(n, scenario.net.clone(), scenario.seed, move |id, _| {
        GossipNode::with_behavior(
            id,
            config.clone(),
            FullMembership::new(id, n),
            behavior(id),
        )
    });
    for i in 0..n {
        for &topic in profile.topics_of(i) {
            sim.schedule_command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(topic),
            );
        }
    }
    for p in &schedule {
        sim.schedule_command(
            p.at,
            NodeId::new(p.publisher as u32),
            GossipCmd::Publish(p.event.clone()),
        );
    }
    GossipRun {
        sim,
        profile,
        schedule,
        horizon: scenario.horizon(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_core::ledger::RatioSpec;

    #[test]
    fn standard_scenario_runs_and_audits() {
        let scenario = GossipScenario::standard(32, 11);
        let cfg = GossipConfig::classic(5, 16, SimDuration::from_millis(100));
        let mut run = build_gossip(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        assert!(audit.num_events() > 0);
        assert!(audit.reliability() > 0.99, "r={}", audit.reliability());
        assert_eq!(audit.spurious(), 0);
        let ledgers = run.ledgers();
        assert_eq!(ledgers.len(), 32);
        let spec = RatioSpec::topic_based();
        assert!(ledgers.iter().any(|l| l.contribution(&spec) > 0.0));
    }

    #[test]
    fn deterministic_across_builds() {
        let scenario = GossipScenario::standard(16, 5);
        let cfg = GossipConfig::classic(4, 16, SimDuration::from_millis(100));
        let r1 = {
            let mut run = build_gossip(&scenario, cfg.clone(), |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        let r2 = {
            let mut run = build_gossip(&scenario, cfg, |_| Behavior::Honest);
            run.run();
            run.audit().reliability()
        };
        assert_eq!(r1, r2);
    }
}
