//! FIG1 — the paper's Figure 1: "the ratio contribution/benefit of each
//! peer in the system must be equivalent to be considered fair."
//!
//! We run the same heterogeneous-interest workload under the classic
//! static-fanout gossip and under the fair (adaptive-fanout) protocol and
//! summarize the per-peer ratio distribution. The paper's thesis predicts:
//! classic gossip shows widely dispersed ratios (uninterested peers work
//! as much as heavy consumers); the fair protocol compresses the ratio
//! distribution (Jain → 1, Gini → 0) at equal delivery reliability.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::{ratio_report, ratios};
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::SimDuration;
use fed_util::stats::Summary;
use fed_workload::scenario::ScenarioSpec;

/// Result of the FIG1 experiment.
#[derive(Debug)]
pub struct Fig1Result {
    /// Summary table (one row per protocol).
    pub table: Table,
    /// Jain index of the classic protocol.
    pub classic_jain: f64,
    /// Jain index of the fair protocol.
    pub fair_jain: f64,
    /// Delivery reliability of the classic protocol.
    pub classic_reliability: f64,
    /// Delivery reliability of the fair protocol.
    pub fair_reliability: f64,
}

/// Runs FIG1 at population size `n`.
pub fn run(n: usize, seed: u64) -> Fig1Result {
    let scenario = ScenarioSpec::fair_gossip(n, seed);
    let spec = RatioSpec::topic_based();
    let mut table = Table::new(
        format!("FIG1: contribution/benefit ratio distribution (n={n})"),
        &[
            "protocol",
            "jain",
            "gini",
            "max/min",
            "p10",
            "p50",
            "p90",
            "reliability",
        ],
    );

    let mut results = Vec::new();
    for (name, cfg) in [
        (
            "classic-gossip",
            GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
        ),
        (
            "fair-gossip",
            GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        ),
    ] {
        let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        let ledgers = run.ledgers();
        let report = ratio_report(ledgers.iter().copied(), &spec);
        let dist = Summary::from_values(ratios(ledgers.iter().copied(), &spec));
        table.row_owned(vec![
            name.to_string(),
            fmt_f64(report.jain),
            fmt_f64(report.gini),
            fmt_f64(report.max_min),
            fmt_f64(dist.percentile(10.0).unwrap_or(0.0)),
            fmt_f64(dist.percentile(50.0).unwrap_or(0.0)),
            fmt_f64(dist.percentile(90.0).unwrap_or(0.0)),
            fmt_f64(audit.reliability()),
        ]);
        results.push((report.jain, audit.reliability()));
    }
    Fig1Result {
        table,
        classic_jain: results[0].0,
        fair_jain: results[1].0,
        classic_reliability: results[0].1,
        fair_reliability: results[1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_protocol_improves_ratio_fairness() {
        let r = run(64, 42);
        assert!(
            r.fair_jain > r.classic_jain,
            "fair {:.3} must beat classic {:.3}\n{}",
            r.fair_jain,
            r.classic_jain,
            r.table
        );
        assert!(r.classic_reliability > 0.99, "{}", r.classic_reliability);
        assert!(r.fair_reliability > 0.99, "{}", r.fair_reliability);
    }

    #[test]
    fn table_has_both_protocols() {
        let r = run(32, 7);
        let s = r.table.to_string();
        assert!(s.contains("classic-gossip") && s.contains("fair-gossip"));
    }
}
