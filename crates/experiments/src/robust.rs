//! E-ROBUST — §5.2 Q5: "How can an adaptive algorithm maintain robustness
//! of gossip protocols?"
//!
//! Gossip's selling point is reliability under loss and crashes. The risk
//! of fairness adaptation is that throttling low-benefit peers thins the
//! epidemic. We sweep message-loss rates and crash fractions and compare
//! delivery reliability of the classic and fair protocols.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{NodeId, SimDuration, SimTime};
use fed_util::rng::{Rng64, SplitMix64};
use fed_workload::scenario::ScenarioSpec;

/// Result of the E-ROBUST experiment.
#[derive(Debug)]
pub struct RobustResult {
    /// Loss sweep table.
    pub loss_table: Table,
    /// Crash sweep table.
    pub crash_table: Table,
    /// (loss, classic reliability, fair reliability).
    pub loss_points: Vec<(f64, f64, f64)>,
    /// (crash fraction, classic reliability, fair reliability).
    pub crash_points: Vec<(f64, f64, f64)>,
}

/// Runs E-ROBUST at population size `n`.
pub fn run(n: usize, seed: u64) -> RobustResult {
    let mut loss_table = Table::new(
        format!("E-ROBUST-a: reliability vs message loss (n={n})"),
        &["loss", "classic", "fair"],
    );
    let mut loss_points = Vec::new();
    for loss in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut rel = Vec::new();
        for cfg in [
            GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
            GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        ] {
            let mut scenario = ScenarioSpec::fair_gossip(n, seed);
            scenario.net =
                NetworkModel::lossy(LatencyModel::Constant(SimDuration::from_millis(10)), loss);
            let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
            run.run();
            rel.push(run.audit().reliability());
        }
        loss_table.row_owned(vec![fmt_f64(loss), fmt_f64(rel[0]), fmt_f64(rel[1])]);
        loss_points.push((loss, rel[0], rel[1]));
    }

    let mut crash_table = Table::new(
        format!("E-ROBUST-b: reliability vs crashed fraction (n={n})"),
        &["crashed", "classic", "fair"],
    );
    let mut crash_points = Vec::new();
    for crash_frac in [0.0, 0.1, 0.2, 0.3] {
        let mut rel = Vec::new();
        for cfg in [
            GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
            GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        ] {
            let scenario = ScenarioSpec::fair_gossip(n, seed ^ 0x5A5A);
            let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
            // Crash a random fraction mid-stream.
            let mut pick = SplitMix64::seed_from_u64(seed);
            let to_crash = (n as f64 * crash_frac) as usize;
            let victims = pick.sample_indices(n, to_crash);
            for v in &victims {
                run.sim
                    .schedule_crash(SimTime::from_secs(8), NodeId::new(*v as u32));
            }
            run.run();
            // Reliability counted over survivors and pre-crash events only:
            // measure deliveries of events published before the crash wave
            // at nodes that stayed alive.
            let mut audit = fed_metrics::delivery::DeliveryAudit::new();
            for p in &run.schedule {
                if p.at < SimTime::from_secs(8) {
                    let interested: Vec<usize> = run
                        .profile
                        .subscribers_of(p.event.topic())
                        .into_iter()
                        .filter(|i| !victims.contains(i))
                        .collect();
                    audit.expect(p.event.id(), p.at, interested);
                }
            }
            for (id, node) in run.sim.nodes() {
                for (eid, rec) in node.deliveries() {
                    audit.record(*eid, id.index(), rec.at);
                }
            }
            rel.push(audit.reliability());
        }
        crash_table.row_owned(vec![fmt_f64(crash_frac), fmt_f64(rel[0]), fmt_f64(rel[1])]);
        crash_points.push((crash_frac, rel[0], rel[1]));
    }

    RobustResult {
        loss_table,
        crash_table,
        loss_points,
        crash_points,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_protocol_keeps_gossip_robustness() {
        let r = run(64, 31);
        for (loss, classic, fair) in &r.loss_points {
            assert!(
                *fair > 0.95,
                "fair reliability at loss {loss}: {fair}\n{}",
                r.loss_table
            );
            assert!(
                fair + 0.05 > *classic,
                "fair must stay within 5% of classic at loss {loss}\n{}",
                r.loss_table
            );
        }
        for (frac, classic, fair) in &r.crash_points {
            assert!(
                *fair > 0.93,
                "fair reliability at crash {frac}: {fair}\n{}",
                r.crash_table
            );
            assert!(fair + 0.07 > *classic, "crash {frac}\n{}", r.crash_table);
        }
    }
}
