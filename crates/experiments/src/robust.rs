//! E-ROBUST — §5.2 Q5: "How can an adaptive algorithm maintain robustness
//! of gossip protocols?"
//!
//! Gossip's selling point is reliability under loss and crashes. The risk
//! of fairness adaptation is that throttling low-benefit peers thins the
//! epidemic. We sweep message-loss rates and crash fractions and compare
//! delivery reliability of the classic and fair protocols.
//!
//! Every sweep point also emits a [`BenchRecord`] (suite
//! `robust-loss-<rate>` / `robust-crash-<fraction>`) so BENCH-DIFF can
//! flag a robustness-throughput regression between artifacts the same
//! way it flags the scale sweeps.

use crate::bench_json::BenchRecord;
use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{NodeId, SimDuration, SimTime};
use fed_util::rng::{Rng64, SplitMix64};
use fed_workload::scenario::ScenarioSpec;
use std::time::Instant;

/// Result of the E-ROBUST experiment.
#[derive(Debug)]
pub struct RobustResult {
    /// Loss sweep table.
    pub loss_table: Table,
    /// Crash sweep table.
    pub crash_table: Table,
    /// (loss, classic reliability, fair reliability).
    pub loss_points: Vec<(f64, f64, f64)>,
    /// (crash fraction, classic reliability, fair reliability).
    pub crash_points: Vec<(f64, f64, f64)>,
    /// Machine-readable records of every sweep point, for
    /// `BENCH_cluster.json` / BENCH-DIFF.
    pub records: Vec<BenchRecord>,
}

/// One sweep point's bench record. The sweep parameter is encoded in the
/// suite name (a configuration field, hence part of the diff key); the
/// gossip variant rides in `arch`.
fn point_record(
    suite: String,
    arch: &'static str,
    spec: &ScenarioSpec,
    events: u64,
    wall_ms: f64,
) -> BenchRecord {
    BenchRecord {
        suite,
        arch: arch.into(),
        n: spec.n,
        shards: 1,
        placement: spec.placement.name().into(),
        adaptive_window: spec.adaptive_window,
        telemetry: spec.telemetry.is_some(),
        events,
        windows: 0,
        wall_ms,
        events_per_sec: if wall_ms > 0.0 {
            events as f64 / (wall_ms / 1e3)
        } else {
            0.0
        },
    }
}

/// Runs E-ROBUST at population size `n`.
pub fn run(n: usize, seed: u64) -> RobustResult {
    let mut loss_table = Table::new(
        format!("E-ROBUST-a: reliability vs message loss (n={n})"),
        &["loss", "classic", "fair"],
    );
    let mut loss_points = Vec::new();
    let mut records = Vec::new();
    for loss in [0.0, 0.1, 0.2, 0.3, 0.4] {
        let mut rel = Vec::new();
        for (arch, cfg) in [
            (
                "static-gossip",
                GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
            ),
            (
                "fair-gossip",
                GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
            ),
        ] {
            let mut scenario = ScenarioSpec::fair_gossip(n, seed);
            scenario.net =
                NetworkModel::lossy(LatencyModel::Constant(SimDuration::from_millis(10)), loss);
            let start = Instant::now();
            let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
            run.run();
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            records.push(point_record(
                format!("robust-loss-{loss:.2}"),
                arch,
                &scenario,
                run.sim.events_processed(),
                wall_ms,
            ));
            rel.push(run.audit().reliability());
        }
        loss_table.row_owned(vec![fmt_f64(loss), fmt_f64(rel[0]), fmt_f64(rel[1])]);
        loss_points.push((loss, rel[0], rel[1]));
    }

    let mut crash_table = Table::new(
        format!("E-ROBUST-b: reliability vs crashed fraction (n={n})"),
        &["crashed", "classic", "fair"],
    );
    let mut crash_points = Vec::new();
    for crash_frac in [0.0, 0.1, 0.2, 0.3] {
        let mut rel = Vec::new();
        for (arch, cfg) in [
            (
                "static-gossip",
                GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
            ),
            (
                "fair-gossip",
                GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
            ),
        ] {
            let scenario = ScenarioSpec::fair_gossip(n, seed ^ 0x5A5A);
            let start = Instant::now();
            let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
            // Crash a random fraction mid-stream.
            let mut pick = SplitMix64::seed_from_u64(seed);
            let to_crash = (n as f64 * crash_frac) as usize;
            let victims = pick.sample_indices(n, to_crash);
            for v in &victims {
                run.sim
                    .schedule_crash(SimTime::from_secs(8), NodeId::new(*v as u32));
            }
            run.run();
            records.push(point_record(
                format!("robust-crash-{crash_frac:.2}"),
                arch,
                &scenario,
                run.sim.events_processed(),
                start.elapsed().as_secs_f64() * 1e3,
            ));
            // Reliability counted over survivors and pre-crash events only:
            // measure deliveries of events published before the crash wave
            // at nodes that stayed alive.
            let mut audit = fed_metrics::delivery::DeliveryAudit::new();
            for p in &run.schedule {
                if p.at < SimTime::from_secs(8) {
                    let interested: Vec<usize> = run
                        .profile
                        .subscribers_of(p.event.topic())
                        .into_iter()
                        .filter(|i| !victims.contains(i))
                        .collect();
                    audit.expect(p.event.id(), p.at, interested);
                }
            }
            for (id, node) in run.sim.nodes() {
                for (eid, rec) in node.deliveries() {
                    audit.record(*eid, id.index(), rec.at);
                }
            }
            rel.push(audit.reliability());
        }
        crash_table.row_owned(vec![fmt_f64(crash_frac), fmt_f64(rel[0]), fmt_f64(rel[1])]);
        crash_points.push((crash_frac, rel[0], rel[1]));
    }

    RobustResult {
        loss_table,
        crash_table,
        loss_points,
        crash_points,
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_sweep_point_emits_a_bench_record() {
        let r = run(48, 31);
        // 5 loss points + 4 crash points, two protocols each.
        assert_eq!(r.records.len(), (5 + 4) * 2);
        for rec in &r.records {
            assert!(
                rec.suite.starts_with("robust-loss-") || rec.suite.starts_with("robust-crash-"),
                "sweep parameter must live in the suite key: {}",
                rec.suite
            );
            assert!(rec.events > 0, "{}: dead run", rec.suite);
            assert!(rec.events_per_sec > 0.0, "{}: no throughput", rec.suite);
        }
        // Keys are unique per (suite, arch): BENCH-DIFF must not collapse
        // distinct sweep points.
        let mut keys: Vec<String> = r
            .records
            .iter()
            .map(|rec| format!("{}|{}", rec.suite, rec.arch))
            .collect();
        keys.sort();
        let before = keys.len();
        keys.dedup();
        assert_eq!(keys.len(), before, "duplicate sweep-point keys");
    }

    #[test]
    fn fair_protocol_keeps_gossip_robustness() {
        let r = run(64, 31);
        for (loss, classic, fair) in &r.loss_points {
            assert!(
                *fair > 0.95,
                "fair reliability at loss {loss}: {fair}\n{}",
                r.loss_table
            );
            assert!(
                fair + 0.05 > *classic,
                "fair must stay within 5% of classic at loss {loss}\n{}",
                r.loss_table
            );
        }
        for (frac, classic, fair) in &r.crash_points {
            assert!(
                *fair > 0.93,
                "fair reliability at crash {frac}: {fair}\n{}",
                r.crash_table
            );
            assert!(fair + 0.07 > *classic, "crash {frac}\n{}", r.crash_table);
        }
    }
}
