//! RUN/PARITY — execute declarative scenario files on either engine.
//!
//! The `fed-experiments` CLI accepts `run <path.toml>` (or `run @name`,
//! resolved against the repository's `scenarios/` library) and executes
//! the file through the architecture-generic harness: the sequential
//! engine when the file asks for one shard, the sharded cluster
//! otherwise. The run prints a liveness summary, the fairness tables
//! (contribution/benefit ratios *and* raw load — the paper's §3
//! distinction), the delivery-latency percentiles, and — when the file
//! enables `[telemetry]` — a per-window transient summary.
//!
//! `parity <target>` (or `parity @all` for the whole library) is the
//! determinism gate: the same file runs on the sequential engine and on
//! the cluster at shard counts {1, 4} plus the file's own shard count
//! (the configuration `run` actually uses), and every observable — delivery
//! logs, fairness ledgers, transport statistics, event count and the
//! telemetry series — must be bit-identical. CI runs `parity @all`
//! time-boxed, so every scenario in the library is continuously proven
//! runnable *and* engine-agnostic.

use crate::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::{contribution_report, ratio_report};
use fed_metrics::table::{fmt_f64, Table};
use fed_workload::scenario_file::{parse_scenario, ScenarioFile};
use fed_workload::ScenarioSpec;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Shard counts the parity gate always sweeps on the cluster engine;
/// the scenario's own shard count is added on top (see
/// [`parity_shards_for`]) so the configuration `run` actually uses is
/// never the one configuration the gate skipped.
pub const PARITY_SHARDS: &[usize] = &[1, 4];

/// The full parity sweep for a spec: [`PARITY_SHARDS`] plus the spec's
/// own shard count, deduplicated.
pub fn parity_shards_for(spec: &ScenarioSpec) -> Vec<usize> {
    let mut shards = PARITY_SHARDS.to_vec();
    if !shards.contains(&spec.shards) {
        shards.push(spec.shards);
    }
    shards
}

/// Locates the curated scenario library.
///
/// Prefers `scenarios/` under the current directory (the normal case:
/// the runner invoked from the repository root), falling back to the
/// path relative to this crate's manifest so tests and `cargo run` from
/// a subdirectory behave identically.
pub fn scenarios_dir() -> PathBuf {
    let local = PathBuf::from("scenarios");
    if local.is_dir() {
        return local;
    }
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../scenarios")
        .to_path_buf()
}

/// Resolves a CLI target: `@name` means `scenarios/<name>.toml`,
/// anything else is a literal path.
pub fn resolve_target(target: &str) -> PathBuf {
    match target.strip_prefix('@') {
        Some(name) => scenarios_dir().join(format!("{name}.toml")),
        None => PathBuf::from(target),
    }
}

/// Every `.toml` file in the scenario library, sorted by file name.
///
/// # Errors
///
/// Returns a message when the library directory cannot be read.
pub fn library() -> Result<Vec<PathBuf>, String> {
    let dir = scenarios_dir();
    let entries = std::fs::read_dir(&dir)
        .map_err(|e| format!("cannot read scenario library {}: {e}", dir.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    Ok(files)
}

/// Loads and strictly validates one scenario file.
///
/// # Errors
///
/// Returns a message carrying the path and (for parse errors) the line
/// number.
pub fn load_file(path: &Path) -> Result<ScenarioFile, String> {
    let input = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_scenario(&input).map_err(|e| format!("{}: {e}", path.display()))
}

/// The engine a spec's shard count implies for a plain `run`.
pub fn engine_for(spec: &ScenarioSpec) -> EngineKind {
    if spec.shards > 1 {
        EngineKind::Cluster
    } else {
        EngineKind::Sequential
    }
}

/// Everything `run <target>` prints, as data.
#[derive(Debug)]
pub struct ScenarioReport {
    /// Display name (file stem or `[scenario] name`).
    pub name: String,
    /// Engine the run used.
    pub engine: EngineKind,
    /// Liveness summary (events, windows, deliveries, reliability, wall).
    pub summary: Table,
    /// Fairness over ratios and raw load.
    pub fairness: Table,
    /// Delivery-latency percentiles.
    pub latency: Table,
    /// Per-window transient summary when the file enabled telemetry.
    pub telemetry: Option<Table>,
    /// Failure-detection summary when the file armed `[membership]`.
    pub membership: Option<Table>,
    /// Profiler tables (phases, stall attribution, work counters) when
    /// the file enabled `[profile]`; empty otherwise.
    pub profile_tables: Vec<Table>,
    /// Tracing tables (delivery-tree summary, worst-stretch events,
    /// forwarding-cost attribution) when the file enabled `[trace]`;
    /// empty otherwise.
    pub trace_tables: Vec<Table>,
    /// The raw outcome, for callers that want more than tables.
    pub outcome: ArchOutcome,
}

/// Runs one parsed scenario and builds the report tables.
pub fn run_scenario(name: &str, spec: &ScenarioSpec) -> ScenarioReport {
    let engine = engine_for(spec);
    let start = Instant::now();
    let outcome = run_architecture(spec, engine);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let audit = outcome.audit();

    let mut summary = Table::new(
        format!("RUN {name}: {} (n={})", spec.arch, spec.n),
        &[
            "engine",
            "shards",
            "events",
            "windows",
            "deliveries",
            "reliability",
            "spurious",
            "handover_ms",
            "wall_ms",
        ],
    );
    summary.row_owned(vec![
        match engine {
            EngineKind::Sequential => "sequential".to_string(),
            EngineKind::Cluster => "cluster".to_string(),
        },
        outcome.shards.to_string(),
        outcome.events.to_string(),
        outcome.windows.to_string(),
        outcome.total_deliveries().to_string(),
        fmt_f64(audit.reliability()),
        audit.spurious().to_string(),
        outcome
            .handover_time()
            .map_or_else(|| "-".into(), |t| t.as_millis().to_string()),
        fmt_f64(wall_ms),
    ]);

    let ratio_spec = RatioSpec::topic_based();
    let ratio = ratio_report(outcome.ledgers.iter(), &ratio_spec);
    let load = contribution_report(outcome.ledgers.iter(), &ratio_spec);
    let total_msgs: u64 = outcome.stats.iter().map(|s| s.msgs_sent).sum();
    let hottest = outcome.stats.iter().map(|s| s.msgs_sent).max().unwrap_or(0);
    let mut fairness = Table::new(
        format!("RUN {name}: fairness"),
        &["view", "jain", "gini", "max/min", "hottest node share"],
    );
    let hottest_share = if total_msgs == 0 {
        0.0
    } else {
        hottest as f64 / total_msgs as f64
    };
    // The hottest-node share is a raw-load quantity; the ratio view has
    // no analogue, so that row leaves the column empty.
    fairness.row_owned(vec![
        "contribution/benefit ratio".to_string(),
        fmt_f64(ratio.jain),
        fmt_f64(ratio.gini),
        fmt_f64(ratio.max_min),
        "-".to_string(),
    ]);
    fairness.row_owned(vec![
        "raw load".to_string(),
        fmt_f64(load.jain),
        fmt_f64(load.gini),
        fmt_f64(load.max_min),
        fmt_f64(hottest_share),
    ]);

    let lat = audit.latency_ms();
    let mut latency = Table::new(
        format!("RUN {name}: delivery latency (ms)"),
        &["deliveries", "mean", "p50", "p95", "p99", "max"],
    );
    let pct = |p: f64| lat.percentile(p).map(fmt_f64).unwrap_or_else(|| "-".into());
    latency.row_owned(vec![
        lat.len().to_string(),
        fmt_f64(lat.mean()),
        pct(50.0),
        pct(95.0),
        pct(99.0),
        lat.max().map(fmt_f64).unwrap_or_else(|| "-".into()),
    ]);

    let telemetry = outcome.telemetry.as_ref().map(|series| {
        let mut t = Table::new(
            format!("RUN {name}: telemetry transients"),
            &[
                "windows",
                "active",
                "jain_min",
                "gini_peak",
                "peak load_max",
                "peak window msgs",
            ],
        );
        let rows = series.rows();
        let active: Vec<_> = rows.iter().filter(|r| r.events > 0).collect();
        let jain_min = active.iter().map(|r| r.jain).fold(f64::INFINITY, f64::min);
        let gini_peak = active.iter().map(|r| r.gini).fold(0.0, f64::max);
        let peak_load = series.windows.iter().map(|w| w.load_max).max().unwrap_or(0);
        let peak_msgs = series
            .windows
            .iter()
            .map(|w| w.msgs_sent)
            .max()
            .unwrap_or(0);
        t.row_owned(vec![
            rows.len().to_string(),
            active.len().to_string(),
            if active.is_empty() {
                "-".into()
            } else {
                fmt_f64(jain_min)
            },
            fmt_f64(gini_peak),
            peak_load.to_string(),
            peak_msgs.to_string(),
        ]);
        t
    });

    let membership = spec.membership.as_ref().map(|_| {
        let window = spec
            .telemetry
            .as_ref()
            .map_or(fed_sim::SimDuration::from_millis(500), |t| t.window);
        let series = outcome.membership_series(window);
        let mut t = Table::new(
            format!("RUN {name}: failure detection"),
            &[
                "observations",
                "detections",
                "latency_mean_ms",
                "false_susp",
                "refutes",
                "self_refutes",
            ],
        );
        t.row_owned(vec![
            outcome.total_swim_observations().to_string(),
            series.total_detections().to_string(),
            series
                .detection_latency_mean_us()
                .map_or_else(|| "-".into(), |us| fmt_f64(us / 1e3)),
            series.total_false_suspicions().to_string(),
            series.total_refutes().to_string(),
            series
                .windows
                .iter()
                .map(|w| w.self_refutes)
                .sum::<u64>()
                .to_string(),
        ]);
        t
    });

    let profile_tables = outcome
        .profiling
        .as_ref()
        .map(|p| {
            let mut v = vec![crate::profile::phase_table(name, p)];
            if let Some(stall) = crate::profile::stall_table(name, p) {
                v.push(stall);
            }
            v.push(crate::profile::work_table(name, p));
            v
        })
        .unwrap_or_default();

    let trace_tables = outcome
        .trace
        .as_ref()
        .map(|hops| crate::trace::trace_tables(name, hops, crate::trace::direct_floor(spec)))
        .unwrap_or_default();

    ScenarioReport {
        name: name.to_string(),
        engine,
        summary,
        fairness,
        latency,
        telemetry,
        membership,
        profile_tables,
        trace_tables,
        outcome,
    }
}

/// Result of one scenario's parity gate.
#[derive(Debug)]
pub struct ParityReport {
    /// One row per engine/shard combination.
    pub table: Table,
    /// Whether every combination matched the sequential run bit for bit.
    pub identical: bool,
}

/// `true` when two outcomes describe the same virtual-world execution.
///
/// Compares every observable that must be engine-invariant: per-node
/// delivery logs, fairness ledgers, transport statistics, the engine's
/// event count, (when enabled) the full telemetry series, the SWIM
/// observation logs and the strategy-handover instants. Barrier window
/// counts are intentionally excluded — they are scheduling artifacts,
/// not observables. Hop traces are compared separately (see
/// [`traces_match`]): they are an *observation* whose presence depends
/// on the instrumentation config, so an untraced run can still match a
/// traced one in the virtual world — which is exactly what the tracer's
/// passivity tests assert.
pub fn outcomes_match(a: &ArchOutcome, b: &ArchOutcome) -> bool {
    a.deliveries == b.deliveries
        && a.ledgers == b.ledgers
        && a.stats == b.stats
        && a.events == b.events
        && a.telemetry == b.telemetry
        && a.swim == b.swim
        && a.handovers == b.handovers
}

/// `true` when two outcomes carry byte-identical merged hop traces —
/// including both being untraced. Used alongside [`outcomes_match`]
/// wherever the two runs share the same `[trace]` config (the parity
/// gate, the TRACE experiment, the `trace_parity` suite).
pub fn traces_match(a: &ArchOutcome, b: &ArchOutcome) -> bool {
    a.trace == b.trace
}

/// Runs the parity gate for one scenario: sequential baseline, then the
/// cluster at each of `shard_counts`, all compared bit for bit.
pub fn parity_gate(name: &str, spec: &ScenarioSpec, shard_counts: &[usize]) -> ParityReport {
    let mut table = Table::new(
        format!("PARITY {name}: {} (n={})", spec.arch, spec.n),
        &[
            "engine",
            "shards",
            "events",
            "deliveries",
            "wall_ms",
            "identical",
        ],
    );
    let start = Instant::now();
    let baseline = run_architecture(spec, EngineKind::Sequential);
    let base_wall = start.elapsed().as_secs_f64() * 1e3;
    table.row_owned(vec![
        "sequential".to_string(),
        "1".to_string(),
        baseline.events.to_string(),
        baseline.total_deliveries().to_string(),
        fmt_f64(base_wall),
        "baseline".to_string(),
    ]);
    let mut identical = true;
    for &shards in shard_counts {
        let spec = spec.clone().with_shards(shards);
        let start = Instant::now();
        let outcome = run_architecture(&spec, EngineKind::Cluster);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let same = outcomes_match(&baseline, &outcome) && traces_match(&baseline, &outcome);
        identical &= same;
        table.row_owned(vec![
            "cluster".to_string(),
            shards.to_string(),
            outcome.events.to_string(),
            outcome.total_deliveries().to_string(),
            fmt_f64(wall_ms),
            same.to_string(),
        ]);
    }
    ParityReport { table, identical }
}

/// Display name of a scenario file: its `[scenario] name`, else the file
/// stem.
pub fn display_name(path: &Path, file: &ScenarioFile) -> String {
    file.name.clone().unwrap_or_else(|| {
        path.file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string())
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_telemetry::TelemetrySpec;
    use fed_workload::scenario::Architecture;

    fn small_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::standard(Architecture::SplitStream, 32, 9)
            .with_telemetry(TelemetrySpec::default());
        spec.plan.duration = fed_sim::SimTime::from_secs(2);
        spec
    }

    #[test]
    fn run_scenario_builds_all_tables() {
        let report = run_scenario("unit", &small_spec());
        assert_eq!(report.engine, EngineKind::Sequential);
        assert_eq!(report.summary.len(), 1);
        assert_eq!(report.fairness.len(), 2);
        assert_eq!(report.latency.len(), 1);
        assert!(report.telemetry.is_some(), "telemetry spec set");
        assert!(report.profile_tables.is_empty(), "no [profile] section");
        assert!(report.outcome.total_deliveries() > 0);
    }

    #[test]
    fn profiled_scenario_adds_profile_tables() {
        let spec = small_spec().with_profile(fed_profile::ProfileSpec::default());
        let seq = run_scenario("unit", &spec);
        assert_eq!(seq.profile_tables.len(), 2, "phases + work, no stalls");
        let clu = run_scenario("unit", &spec.with_shards(3));
        assert_eq!(clu.profile_tables.len(), 3, "phases + stalls + work");
        assert!(clu.outcome.profiling.is_some());
    }

    #[test]
    fn cluster_engine_used_when_shards_requested() {
        let report = run_scenario("unit", &small_spec().with_shards(3));
        assert_eq!(report.engine, EngineKind::Cluster);
        assert!(report.outcome.windows > 0);
    }

    #[test]
    fn parity_gate_passes_for_a_small_scenario() {
        let report = parity_gate("unit", &small_spec(), PARITY_SHARDS);
        assert!(report.identical, "{}", report.table);
        assert_eq!(report.table.len(), 1 + PARITY_SHARDS.len());
    }

    #[test]
    fn target_resolution() {
        assert_eq!(
            resolve_target("@wan-lognormal"),
            scenarios_dir().join("wan-lognormal.toml")
        );
        assert_eq!(resolve_target("x/y.toml"), PathBuf::from("x/y.toml"));
    }
}
