//! E-BIAS — §5.2 Q6: "Can we ensure that a peer does not artificially grow
//! its contribution by biasing the selection of peers or the selection of
//! events?"
//!
//! We plant free-riders (work less, under-advertise benefit) and inflators
//! (claim more contribution than performed) among honest peers, run the
//! fair protocol, then audit every node with a committee of random
//! witnesses using the receipt counters the protocol already maintains.
//! Reported: detection recall per behaviour class, false-positive rate on
//! honest peers, and the residual unfairness the cheats caused.

use crate::harness::build_gossip_spec;
use fed_core::audit::{audit_subject, AuditConfig, AuditOutcome, WitnessReport};
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{NodeId, SimDuration};
use fed_util::rng::{Rng64, SplitMix64};
use fed_workload::scenario::ScenarioSpec;

/// Result of the E-BIAS experiment.
#[derive(Debug)]
pub struct BiasResult {
    /// Detection table.
    pub table: Table,
    /// Fraction of inflators flagged as over-claiming.
    pub inflator_recall: f64,
    /// Fraction of honest peers incorrectly flagged as over-claiming.
    pub false_positive_rate: f64,
    /// Jain index over honest peers' ratios (the damage cheats cause).
    pub honest_jain: f64,
}

/// Runs E-BIAS at population size `n` with the given cheat fractions.
pub fn run(n: usize, seed: u64) -> BiasResult {
    let free_riders = n / 10;
    let inflators = n / 10;
    let scenario = ScenarioSpec::fair_gossip(n, seed);
    let cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
    let behavior = move |id: NodeId| {
        let i = id.index();
        if i < free_riders {
            Behavior::FreeRider {
                fanout_cap: 1.0,
                advertised_benefit_scale: 0.1,
            }
        } else if i < free_riders + inflators {
            Behavior::Inflator {
                advertised_contribution_scale: 5.0,
            }
        } else {
            Behavior::Honest
        }
    };
    let mut run = build_gossip_spec(&scenario, cfg, behavior);
    run.run();

    // Committee audit of every node: sample 16 witnesses, gather receipt
    // counters and the subject's claimed contribution rate.
    let committee = 16usize.min(n - 1);
    let audit_cfg = AuditConfig::default();
    let mut picker = SplitMix64::seed_from_u64(seed ^ 0xB1A5);
    let mut flagged_over = vec![false; n];
    let mut insufficient = 0usize;
    for (subject, over_flag) in flagged_over.iter_mut().enumerate() {
        // The subject's most recent claim, as seen by any peer. Lifetime
        // totals divided by elapsed rounds give the rate the receipt
        // counters measure (a windowed snapshot would race the workload's
        // phases and flag honest peers whose rate varies over time).
        let claimed = run
            .sim
            .nodes()
            .find_map(|(_, node)| node.claim_of(NodeId::new(subject as u32)))
            .map(|s| s.contribution_total);
        let Some(claimed_total) = claimed else {
            insufficient += 1;
            continue;
        };
        let subject_rounds = run
            .sim
            .node(NodeId::new(subject as u32))
            .map(|node| node.rounds().max(1))
            .unwrap_or(1);
        let claimed_rate = claimed_total / subject_rounds as f64;
        let mut witnesses = Vec::new();
        let mut indices = picker.sample_indices(n, committee + 1);
        indices.retain(|&i| i != subject);
        indices.truncate(committee);
        for w in indices {
            let node = run.sim.node(NodeId::new(w as u32)).expect("node exists");
            if let Some((messages, since_round)) = node.receipts_from(NodeId::new(subject as u32)) {
                let rounds = node.rounds().saturating_sub(since_round).max(1);
                witnesses.push(WitnessReport { messages, rounds });
            } else {
                // Zero receipts over the witness's whole lifetime.
                witnesses.push(WitnessReport {
                    messages: 0,
                    rounds: node.rounds().max(1),
                });
            }
        }
        let verdict = audit_subject(
            NodeId::new(subject as u32),
            claimed_rate,
            &witnesses,
            n,
            &audit_cfg,
        );
        match verdict.outcome {
            AuditOutcome::OverClaimed => *over_flag = true,
            AuditOutcome::InsufficientEvidence => insufficient += 1,
            _ => {}
        }
    }

    let inflator_hits = (free_riders..free_riders + inflators)
        .filter(|&i| flagged_over[i])
        .count();
    let honest_flags = (free_riders + inflators..n)
        .filter(|&i| flagged_over[i])
        .count();
    let inflator_recall = inflator_hits as f64 / inflators.max(1) as f64;
    let honest_count = n - free_riders - inflators;
    let false_positive_rate = honest_flags as f64 / honest_count.max(1) as f64;

    let spec = RatioSpec::topic_based();
    let honest_ledgers: Vec<_> = run
        .sim
        .nodes()
        .filter(|(id, _)| id.index() >= free_riders + inflators)
        .map(|(_, node)| node.ledger())
        .collect();
    let honest_jain = ratio_report(honest_ledgers, &spec).jain;

    let mut table = Table::new(
        format!(
            "E-BIAS: receipt audits against cheats (n={n}, {free_riders} free-riders, {inflators} inflators)"
        ),
        &["metric", "value"],
    );
    table.row_owned(vec![
        "inflator recall (over-claim flags)".into(),
        fmt_f64(inflator_recall),
    ]);
    table.row_owned(vec![
        "honest false-positive rate".into(),
        fmt_f64(false_positive_rate),
    ]);
    table.row_owned(vec!["honest-peer ratio jain".into(), fmt_f64(honest_jain)]);
    table.row_owned(vec![
        "audits without evidence".into(),
        insufficient.to_string(),
    ]);

    BiasResult {
        table,
        inflator_recall,
        false_positive_rate,
        honest_jain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn audits_catch_inflators_not_honest_peers() {
        let r = run(80, 37);
        assert!(
            r.inflator_recall >= 0.75,
            "recall {}\n{}",
            r.inflator_recall,
            r.table
        );
        assert!(
            r.false_positive_rate <= 0.1,
            "false positives {}\n{}",
            r.false_positive_rate,
            r.table
        );
    }
}
