//! Command-line experiment runner.
//!
//! ```text
//! fed-experiments                      # run every registered experiment
//! fed-experiments fig1 arch            # run selected experiments
//! fed-experiments --seed 7 fig1
//! fed-experiments run scenarios/wan-lognormal.toml
//! fed-experiments run --profile @fair-vs-static
//! fed-experiments run --trace @zipf-hotspot
//! fed-experiments run @flash-crowd-100k
//! fed-experiments parity @all          # whole-library cross-engine gate
//! fed-experiments bench-diff old.json BENCH_cluster.json
//! ```

use std::process::ExitCode;

/// One unit of work named on the command line.
enum Command {
    /// A registered experiment id (or `smoke:*` / `profile-smoke:*`
    /// pseudo-id).
    Experiment(String),
    /// `run [--profile] [--trace] <path.toml|@name>` — execute one
    /// scenario file.
    Run {
        target: String,
        profile: bool,
        trace: bool,
    },
    /// `parity <path.toml|@name|@all>` — cross-engine parity gate.
    Parity(String),
    /// `bench-diff <old.json> <new.json> [--threshold F]`.
    BenchDiff {
        old: String,
        new: String,
        threshold: Option<f64>,
    },
}

fn print_help() {
    println!("usage: fed-experiments [--seed N] [ids...]");
    println!("\nexperiments (default: all, in this order):");
    for e in fed_experiments::REGISTRY {
        println!("  {:<12} {}", e.id, e.summary);
    }
    println!("\nscenario files:");
    println!("  run [--profile] [--trace] <path.toml|@name>");
    println!("                              execute one declarative scenario");
    println!("                              (@name resolves to scenarios/<name>.toml;");
    println!("                              the file's own seed applies; --profile forces");
    println!("                              profiling on and writes traces/TRACE_<name>.json;");
    println!("                              --trace forces per-event dissemination tracing");
    println!("                              and writes traces/TRACE_<name>.events.json)");
    println!("  parity <path.toml|@name|@all>");
    println!(
        "                              seq-vs-cluster bit-identity gate at shards {:?}",
        fed_experiments::scenario_run::PARITY_SHARDS
    );
    println!("                              plus the file's own shard count");
    println!("\nbenchmark artifacts:");
    println!("  bench-diff <old.json> <new.json> [--threshold F]");
    println!("                              per-row events/s diff of two BENCH_* arrays;");
    println!(
        "                              fails on drops past the threshold (default {})",
        fed_experiments::bench_diff::DEFAULT_THRESHOLD
    );
    println!("\nlarge-population smoke:");
    println!("  smoke[:arch[:n[:shards[:placement[:window]]]]]");
    println!("                              cluster liveness run (default splitstream:100000:8)");
    println!("  profile-smoke[:arch[:n[:shards]]]");
    println!("                              profiler off/on overhead gate on the same workload");
    println!("  trace-smoke[:arch[:n[:shards]]]");
    println!("                              tracer off/on overhead gate on the same workload");
    println!("  sweep-smoke[:workloads]");
    println!("                              downscaled generative sweep; regenerates the");
    println!("                              sweep-smoke suite of BENCH_sweep.json for CI diffing");
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut commands: Vec<Command> = Vec::new();
    let mut args = std::env::args().skip(1).peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "run" | "parity" => {
                let mut profile = false;
                let mut trace = false;
                let mut target = args.next();
                if arg == "run" {
                    loop {
                        match target.as_deref() {
                            Some("--profile") => profile = true,
                            Some("--trace") => trace = true,
                            _ => break,
                        }
                        target = args.next();
                    }
                }
                let Some(target) = target else {
                    eprintln!("{arg} requires a target: a scenario .toml path or @name");
                    return ExitCode::FAILURE;
                };
                commands.push(if arg == "run" {
                    Command::Run {
                        target,
                        profile,
                        trace,
                    }
                } else {
                    Command::Parity(target)
                });
            }
            "bench-diff" => {
                let mut threshold = None;
                let mut paths = Vec::new();
                while paths.len() < 2 {
                    match args.next() {
                        Some(v) if v == "--threshold" => {
                            match args.next().and_then(|v| v.parse().ok()) {
                                Some(f) => threshold = Some(f),
                                None => {
                                    eprintln!("--threshold requires a fraction (e.g. 0.5)");
                                    return ExitCode::FAILURE;
                                }
                            }
                        }
                        Some(v) => paths.push(v),
                        None => {
                            eprintln!("bench-diff requires two paths: <old.json> <new.json>");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                if args.peek().map(String::as_str) == Some("--threshold") {
                    args.next();
                    match args.next().and_then(|v| v.parse().ok()) {
                        Some(f) => threshold = Some(f),
                        None => {
                            eprintln!("--threshold requires a fraction (e.g. 0.5)");
                            return ExitCode::FAILURE;
                        }
                    }
                }
                let new = paths.pop().expect("two paths");
                let old = paths.pop().expect("two paths");
                commands.push(Command::BenchDiff {
                    old,
                    new,
                    threshold,
                });
            }
            other => commands.push(Command::Experiment(other.to_string())),
        }
    }
    if commands.is_empty() {
        commands = fed_experiments::experiment_ids()
            .map(|id| Command::Experiment(id.to_string()))
            .collect();
    }
    for command in &commands {
        match command {
            Command::Experiment(id) => {
                eprintln!("=== running {id} (seed {seed}) ===");
                if !fed_experiments::run_by_id(id, seed) {
                    eprintln!(
                        "unknown experiment {id:?}; available: {}",
                        fed_experiments::experiment_ids_line()
                    );
                    return ExitCode::FAILURE;
                }
            }
            Command::Run {
                target,
                profile,
                trace,
            } => {
                eprintln!("=== running scenario {target} ===");
                if let Err(e) = fed_experiments::run_scenario_target(target, *profile, *trace) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            Command::Parity(target) => {
                eprintln!("=== parity gate {target} ===");
                if let Err(e) = fed_experiments::parity_target(target) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            Command::BenchDiff {
                old,
                new,
                threshold,
            } => {
                eprintln!("=== bench-diff {old} vs {new} ===");
                if let Err(e) = fed_experiments::bench_diff_target(old, new, *threshold) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
