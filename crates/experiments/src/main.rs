//! Command-line experiment runner.
//!
//! ```text
//! fed-experiments                      # run every registered experiment
//! fed-experiments fig1 arch            # run selected experiments
//! fed-experiments --seed 7 fig1
//! fed-experiments run scenarios/wan-lognormal.toml
//! fed-experiments run @flash-crowd-100k
//! fed-experiments parity @all          # whole-library cross-engine gate
//! ```

use std::process::ExitCode;

/// One unit of work named on the command line.
enum Command {
    /// A registered experiment id (or `smoke:*` pseudo-id).
    Experiment(String),
    /// `run <path.toml|@name>` — execute one scenario file.
    Run(String),
    /// `parity <path.toml|@name|@all>` — cross-engine parity gate.
    Parity(String),
}

fn print_help() {
    println!("usage: fed-experiments [--seed N] [ids...]");
    println!("\nexperiments (default: all, in this order):");
    for e in fed_experiments::REGISTRY {
        println!("  {:<12} {}", e.id, e.summary);
    }
    println!("\nscenario files:");
    println!("  run <path.toml|@name>       execute one declarative scenario");
    println!("                              (@name resolves to scenarios/<name>.toml;");
    println!("                              the file's own seed applies)");
    println!("  parity <path.toml|@name|@all>");
    println!(
        "                              seq-vs-cluster bit-identity gate at shards {:?}",
        fed_experiments::scenario_run::PARITY_SHARDS
    );
    println!("                              plus the file's own shard count");
    println!("\nlarge-population smoke:");
    println!("  smoke[:arch[:n[:shards[:placement[:window]]]]]");
    println!("                              cluster liveness run (default splitstream:100000:8)");
}

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut commands: Vec<Command> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                print_help();
                return ExitCode::SUCCESS;
            }
            "run" | "parity" => {
                let Some(target) = args.next() else {
                    eprintln!("{arg} requires a target: a scenario .toml path or @name");
                    return ExitCode::FAILURE;
                };
                commands.push(if arg == "run" {
                    Command::Run(target)
                } else {
                    Command::Parity(target)
                });
            }
            other => commands.push(Command::Experiment(other.to_string())),
        }
    }
    if commands.is_empty() {
        commands = fed_experiments::experiment_ids()
            .map(|id| Command::Experiment(id.to_string()))
            .collect();
    }
    for command in &commands {
        match command {
            Command::Experiment(id) => {
                eprintln!("=== running {id} (seed {seed}) ===");
                if !fed_experiments::run_by_id(id, seed) {
                    eprintln!(
                        "unknown experiment {id:?}; available: {}",
                        fed_experiments::experiment_ids_line()
                    );
                    return ExitCode::FAILURE;
                }
            }
            Command::Run(target) => {
                eprintln!("=== running scenario {target} ===");
                if let Err(e) = fed_experiments::run_scenario_target(target) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            Command::Parity(target) => {
                eprintln!("=== parity gate {target} ===");
                if let Err(e) = fed_experiments::parity_target(target) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    ExitCode::SUCCESS
}
