//! Command-line experiment runner.
//!
//! ```text
//! fed-experiments            # run every experiment
//! fed-experiments fig1 arch  # run selected experiments
//! fed-experiments --seed 7 fig1
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seed = 42u64;
    let mut ids: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => {
                    eprintln!("--seed requires an integer value");
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: fed-experiments [--seed N] [ids...]\navailable ids: {}\n\
                     plus smoke[:arch[:n[:shards]]] — large-population cluster \
                     smoke run (default splitstream:100000:8)",
                    fed_experiments::EXPERIMENT_IDS.join(", ")
                );
                return ExitCode::SUCCESS;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.is_empty() {
        ids = fed_experiments::EXPERIMENT_IDS
            .iter()
            .map(|s| s.to_string())
            .collect();
    }
    for id in &ids {
        eprintln!("=== running {id} (seed {seed}) ===");
        if !fed_experiments::run_by_id(id, seed) {
            eprintln!(
                "unknown experiment {id:?}; available: {}",
                fed_experiments::EXPERIMENT_IDS.join(", ")
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
