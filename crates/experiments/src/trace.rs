//! TRACE — per-event causal dissemination tracing: delivery-tree
//! metrics, forwarding-cost attribution, tracer overhead.
//!
//! The registered `trace` experiment runs one traced scenario on both
//! engines, gates the merged hop buffers byte-identical, and reports
//! (a) an aggregate summary of the reconstructed delivery trees, (b) the
//! worst-stretch events with their per-event hop/duplicate/depth
//! metrics, (c) the per-node forwarding-cost attribution table — who
//! forwarded how many bytes for which topics, the paper's fairness
//! question at per-event resolution — and (d) the tracer's own off/on
//! overhead at the always-on [`SMOKE_SAMPLE_RATE`], appended to
//! `BENCH_trace.json` (the full-rate cost is reported alongside,
//! ungated — it scales with hop volume by design).
//!
//! The `trace-smoke[:arch[:n[:shards]]]` pseudo-id is the
//! large-population CI entry point: the same off/on measurement on the
//! standard smoke workload, asserting the enabled tracer stays under
//! [`OVERHEAD_BAR`].

use crate::bench_json::{append_json_objects, escape};
use crate::harness::{run_architecture, ArchOutcome, EngineKind};
use crate::scale::smoke_spec;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::{HopRecord, SimDuration, SimTime};
use fed_trace::{analyze, attribution, EventTrace, TraceSpec};
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};
use std::io;
use std::path::Path;
use std::time::Instant;

/// Default output path of the tracer benchmark artifact, relative to the
/// invocation directory.
pub const BENCH_TRACE_PATH: &str = "BENCH_trace.json";

/// Ceiling on the enabled tracer's wall-clock overhead, as a fraction of
/// the untraced run — asserted by the `trace-smoke` pseudo-id. Same bar
/// as the profiler's.
pub const OVERHEAD_BAR: f64 = crate::profile::OVERHEAD_BAR;

/// Sampling rate the overhead gates measure at: the always-on tracing
/// configuration. Full-rate tracing materializes every hop record (tens
/// of megabytes per 100k-node run) and is a *data-collection* mode whose
/// cost scales with hop volume, not an instrument you leave attached;
/// the deterministic hash sampler exists precisely so a fractional rate
/// keeps the instrument cheap while still tracing the same whole-event
/// subset on every engine. Enumerating hops for unsampled events costs
/// a few percent; the dominant cost is materializing and merge-sorting
/// the *kept* records, which scales with `rate × hop volume` — hence a
/// rate that keeps a handful of whole events per smoke run.
pub const SMOKE_SAMPLE_RATE: f64 = 0.02;

/// The direct-latency lower bound for `spec`: the fastest the network
/// could carry one message, i.e. the best any dissemination scheme could
/// do for any subscriber. The denominator of every stretch figure.
pub fn direct_floor(spec: &ScenarioSpec) -> SimDuration {
    spec.effective_net().min_latency()
}

/// Aggregate summary of a trace's reconstructed delivery trees.
pub fn summary_table(name: &str, hops: &[HopRecord], events: &[EventTrace]) -> Table {
    let mut t = Table::new(
        format!("TRACE {name}: delivery trees"),
        &[
            "events",
            "hops",
            "drops",
            "deliveries",
            "duplicates",
            "depth max",
            "stress max",
            "stretch mean",
            "stretch max",
        ],
    );
    let sum = |f: fn(&EventTrace) -> u64| events.iter().map(f).sum::<u64>();
    let stretch_mean = if events.is_empty() {
        0.0
    } else {
        events.iter().map(|e| e.stretch).sum::<f64>() / events.len() as f64
    };
    t.row_owned(vec![
        events.len().to_string(),
        hops.len().to_string(),
        sum(|e| e.drops).to_string(),
        sum(|e| e.deliveries).to_string(),
        sum(|e| e.duplicates).to_string(),
        events
            .iter()
            .map(|e| e.depth)
            .max()
            .unwrap_or(0)
            .to_string(),
        events
            .iter()
            .map(|e| e.link_stress)
            .max()
            .unwrap_or(0)
            .to_string(),
        fmt_f64(stretch_mean),
        fmt_f64(events.iter().map(|e| e.stretch).fold(0.0, f64::max)),
    ]);
    t
}

/// The worst-stretch events, one row each: per-event hop count,
/// duplicates, tree depth, link stress, worst latency and stretch.
pub fn event_table(name: &str, events: &[EventTrace], limit: usize) -> Table {
    let mut t = Table::new(
        format!("TRACE {name}: worst-stretch events (top {limit})"),
        &[
            "event",
            "topic",
            "deliveries",
            "hops",
            "dups",
            "depth",
            "stress",
            "latency_ms",
            "stretch",
        ],
    );
    let mut ranked: Vec<&EventTrace> = events.iter().collect();
    // Stretch descending; packed event id breaks ties deterministically.
    ranked.sort_by(|a, b| {
        b.stretch
            .total_cmp(&a.stretch)
            .then_with(|| a.event.cmp(&b.event))
    });
    for e in ranked.into_iter().take(limit) {
        t.row_owned(vec![
            format!("{}#{}", e.publisher, fed_trace::seq_of(e.event)),
            e.topic.to_string(),
            e.deliveries.to_string(),
            e.hops.to_string(),
            e.duplicates.to_string(),
            e.depth.to_string(),
            e.link_stress.to_string(),
            fmt_f64(e.max_latency_us as f64 / 1e3),
            fmt_f64(e.stretch),
        ]);
    }
    t
}

/// The forwarding-cost attribution table: which nodes paid how many
/// transmissions and bytes for which topics, heaviest first, with each
/// row's share of the total traced bytes.
pub fn attribution_table(name: &str, hops: &[HopRecord], limit: usize) -> Table {
    let mut rows = attribution(hops);
    let total_bytes: u64 = rows.iter().map(|r| r.bytes).sum();
    let total_hops: u64 = rows.iter().map(|r| r.hops).sum();
    // Bytes descending; (node, topic) breaks ties deterministically.
    rows.sort_by(|a, b| {
        b.bytes
            .cmp(&a.bytes)
            .then_with(|| (a.node, a.topic).cmp(&(b.node, b.topic)))
    });
    let mut t = Table::new(
        format!("TRACE {name}: forwarding cost by node and topic (top {limit})"),
        &["node", "topic", "events", "hops", "bytes", "byte share"],
    );
    for r in rows.iter().take(limit) {
        t.row_owned(vec![
            r.node.to_string(),
            r.topic.to_string(),
            r.events.to_string(),
            r.hops.to_string(),
            r.bytes.to_string(),
            fmt_f64(if total_bytes == 0 {
                0.0
            } else {
                r.bytes as f64 / total_bytes as f64
            }),
        ]);
    }
    t.row_owned(vec![
        "all".to_string(),
        "all".to_string(),
        "-".to_string(),
        total_hops.to_string(),
        total_bytes.to_string(),
        fmt_f64(1.0),
    ]);
    t
}

/// The three tables `run --trace` prints for a traced scenario.
pub fn trace_tables(name: &str, hops: &[HopRecord], floor: SimDuration) -> Vec<Table> {
    let events = analyze(hops, floor);
    vec![
        summary_table(name, hops, &events),
        event_table(name, &events, 10),
        attribution_table(name, hops, 15),
    ]
}

/// One `BENCH_trace.json` record: a configuration run with tracing off
/// then on, so the instrumentation overhead is tracked across PRs.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceBenchRecord {
    /// Which harness produced the record (`trace`, `trace-smoke`).
    pub suite: String,
    /// Architecture name.
    pub arch: String,
    /// Population size.
    pub n: usize,
    /// Shard count in use.
    pub shards: usize,
    /// Sampling rate the traced run used.
    pub sample_rate: f64,
    /// Events processed (identical off and on — tracing is passive).
    pub events: u64,
    /// Hop records the traced run collected.
    pub hops: u64,
    /// Wall-clock milliseconds with tracing off.
    pub wall_ms_off: f64,
    /// Wall-clock milliseconds with tracing on.
    pub wall_ms_on: f64,
    /// `wall_ms_on / wall_ms_off - 1`.
    pub overhead_frac: f64,
    /// Events per wall-clock second with tracing off.
    pub events_per_sec_off: f64,
    /// Events per wall-clock second with tracing on.
    pub events_per_sec_on: f64,
}

impl TraceBenchRecord {
    /// The record as one JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"suite\":\"{}\",\"arch\":\"{}\",\"n\":{},\"shards\":{},\
             \"sample_rate\":{},\"events\":{},\"hops\":{},\
             \"wall_ms_off\":{:.3},\"wall_ms_on\":{:.3},\
             \"overhead_frac\":{:.4},\
             \"events_per_sec_off\":{:.1},\"events_per_sec_on\":{:.1}}}",
            escape(&self.suite),
            escape(&self.arch),
            self.n,
            self.shards,
            self.sample_rate,
            self.events,
            self.hops,
            self.wall_ms_off,
            self.wall_ms_on,
            self.overhead_frac,
            self.events_per_sec_off,
            self.events_per_sec_on,
        )
    }
}

/// Appends tracer benchmark records to the JSON array at `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem error.
pub fn append_trace_bench(path: impl AsRef<Path>, records: &[TraceBenchRecord]) -> io::Result<()> {
    let objects: Vec<String> = records.iter().map(TraceBenchRecord::to_json).collect();
    append_json_objects(path, &objects)
}

/// An off/on overhead measurement of one cluster configuration.
#[derive(Debug)]
pub struct TraceOverheadPoint {
    /// The traced spec (tracing on).
    pub spec: ScenarioSpec,
    /// Outcome of the untraced run.
    pub off: ArchOutcome,
    /// Outcome of the traced run.
    pub on: ArchOutcome,
    /// Wall-clock milliseconds without tracing (best of `runs`).
    pub wall_ms_off: f64,
    /// Wall-clock milliseconds with tracing (best of `runs`).
    pub wall_ms_on: f64,
}

impl TraceOverheadPoint {
    /// `wall_on / wall_off - 1`: the enabled tracer's relative cost.
    pub fn overhead_frac(&self) -> f64 {
        self.wall_ms_on / self.wall_ms_off.max(1e-9) - 1.0
    }

    /// The measurement as one [`TraceBenchRecord`].
    pub fn record(&self, suite: &str) -> TraceBenchRecord {
        TraceBenchRecord {
            suite: suite.to_string(),
            arch: self.spec.arch.name().to_string(),
            n: self.spec.n,
            shards: self.on.shards,
            sample_rate: self.spec.trace.as_ref().map_or(1.0, |t| t.sample_rate),
            events: self.on.events,
            hops: self.on.trace.as_ref().map_or(0, |t| t.len() as u64),
            wall_ms_off: self.wall_ms_off,
            wall_ms_on: self.wall_ms_on,
            overhead_frac: self.overhead_frac(),
            events_per_sec_off: self.off.events as f64 / (self.wall_ms_off / 1e3).max(1e-9),
            events_per_sec_on: self.on.events as f64 / (self.wall_ms_on / 1e3).max(1e-9),
        }
    }
}

/// Runs `spec` on the cluster engine with tracing off, then on, `runs`
/// times each, keeping the best wall clock per configuration (the
/// repeats damp scheduler noise so the overhead fraction is meaningful).
pub fn measure_trace_overhead(spec: &ScenarioSpec, runs: usize) -> TraceOverheadPoint {
    let runs = runs.max(1);
    let mut spec_off = spec.clone();
    spec_off.trace = None;
    let spec_on = spec
        .clone()
        .with_trace(spec.trace.clone().unwrap_or_default());
    let best = |spec: &ScenarioSpec| {
        let mut wall_ms = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..runs {
            let start = Instant::now();
            let o = run_architecture(spec, EngineKind::Cluster);
            wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
            outcome = Some(o);
        }
        (outcome.expect("runs >= 1"), wall_ms)
    };
    let (off, wall_ms_off) = best(&spec_off);
    let (on, wall_ms_on) = best(&spec_on);
    TraceOverheadPoint {
        spec: spec_on,
        off,
        on,
        wall_ms_off,
        wall_ms_on,
    }
}

/// The scenario the registered `trace` experiment runs: the standard
/// workload with a shorter publication phase (as PROFILE uses), traced
/// at full sampling. The plan is denser than PROFILE's (40 ev/s, ~200
/// distinct events) so the whole-event sampler at [`SMOKE_SAMPLE_RATE`]
/// has real granularity in the sampled-overhead row.
pub fn trace_scenario(n: usize, shards: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, seed)
        .with_shards(shards)
        .with_trace(TraceSpec::default());
    spec.plan = PubPlan {
        rate_per_sec: 40.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// Result of the TRACE experiment.
#[derive(Debug)]
pub struct TraceResult {
    /// Off/on overhead summary, one row per configuration.
    pub summary: Table,
    /// Aggregate delivery-tree summary of the traced run.
    pub tree_table: Table,
    /// Worst-stretch events of the traced run.
    pub event_table: Table,
    /// Per-node forwarding-cost attribution of the traced run.
    pub attribution_table: Table,
    /// Whether the sequential and cluster runs agreed on every
    /// observable *and* produced byte-identical merged hop traces (must
    /// be `true`).
    pub identical: bool,
    /// Machine-readable record for `BENCH_trace.json`.
    pub records: Vec<TraceBenchRecord>,
}

/// Runs the TRACE experiment: sequential-vs-cluster byte-identity of the
/// full-rate merged hop trace at `shards` shards, plus the off/on
/// overhead measurement at the always-on [`SMOKE_SAMPLE_RATE`].
///
/// The overhead rows here are informational, not gated: this small,
/// publication-dense scenario sends ~10 traceable hops per engine event
/// (the 100k smoke sends under one), so its relative tracer cost is a
/// worst case. The [`OVERHEAD_BAR`] gate is asserted by `trace-smoke`
/// on the large-population workload.
pub fn run(n: usize, shards: usize, seed: u64) -> TraceResult {
    // Byte-identity gate and tables at full sampling: every hop traced.
    let spec = trace_scenario(n, shards, seed);
    let seq = run_architecture(&spec, EngineKind::Sequential);
    let full_start = Instant::now();
    let clu = run_architecture(&spec, EngineKind::Cluster);
    let full_wall_ms = full_start.elapsed().as_secs_f64() * 1e3;

    // Overhead at the sampled always-on configuration. Whole-event
    // sampling over ~200 events at 2% can legitimately keep none; the
    // salt is free, so use one under which this scenario's event-id
    // hashes deterministically admit a couple of whole events.
    let mut sampled = spec.clone();
    sampled.trace = Some(TraceSpec {
        sample_rate: SMOKE_SAMPLE_RATE,
        salt: 47,
        ..TraceSpec::default()
    });
    let point = measure_trace_overhead(&sampled, 3);

    let seq_trace = seq.trace.as_ref().expect("tracing on");
    let identical = crate::scenario_run::outcomes_match(&seq, &clu)
        && crate::scenario_run::traces_match(&seq, &clu)
        && crate::scenario_run::outcomes_match(&seq, &point.on)
        && crate::scenario_run::outcomes_match(&seq, &point.off);

    let mut summary = Table::new(
        format!("TRACE: instrumentation overhead (n={n}, shards={shards})"),
        &[
            "config",
            "events",
            "hops",
            "wall_ms",
            "events/s",
            "overhead",
            "identical",
        ],
    );
    summary.row_owned(vec![
        "trace off".to_string(),
        point.off.events.to_string(),
        "-".to_string(),
        fmt_f64(point.wall_ms_off),
        fmt_f64(point.off.events as f64 / (point.wall_ms_off / 1e3).max(1e-9)),
        "-".to_string(),
        identical.to_string(),
    ]);
    summary.row_owned(vec![
        format!("sampled {SMOKE_SAMPLE_RATE}"),
        point.on.events.to_string(),
        point.on.trace.as_ref().map_or(0, Vec::len).to_string(),
        fmt_f64(point.wall_ms_on),
        fmt_f64(point.on.events as f64 / (point.wall_ms_on / 1e3).max(1e-9)),
        fmt_f64(point.overhead_frac()),
        identical.to_string(),
    ]);
    summary.row_owned(vec![
        "full rate".to_string(),
        clu.events.to_string(),
        seq_trace.len().to_string(),
        fmt_f64(full_wall_ms),
        fmt_f64(clu.events as f64 / (full_wall_ms / 1e3).max(1e-9)),
        fmt_f64(full_wall_ms / point.wall_ms_off.max(1e-9) - 1.0),
        identical.to_string(),
    ]);

    let name = "fair-gossip";
    let floor = direct_floor(&spec);
    let events = analyze(seq_trace, floor);
    let records = vec![point.record("trace")];
    TraceResult {
        summary,
        tree_table: summary_table(name, seq_trace, &events),
        event_table: event_table(name, &events, 10),
        attribution_table: attribution_table(name, seq_trace, 15),
        identical,
        records,
    }
}

/// Outcome of one `trace-smoke` overhead run.
#[derive(Debug)]
pub struct TraceSmokePoint {
    /// The off/on measurement.
    pub point: TraceOverheadPoint,
    /// The record appended to `BENCH_trace.json`.
    pub record: TraceBenchRecord,
}

/// The large-population tracer smoke: the standard smoke workload
/// (round-robin placement, adaptive windows, telemetry off) run with
/// tracing off then on at [`SMOKE_SAMPLE_RATE`], twice each, keeping
/// the best wall clocks.
///
/// One deviation from the shared smoke plan: the publication rate is
/// raised to 50 ev/s (~100 distinct events instead of ~10). Sampling is
/// *whole-event* — at 100k nodes each event fans out to tens of
/// thousands of hops, and a fractional draw over ten coarse events
/// would keep zero or one of them, making both the hop count and the
/// measured cost lottery tickets. A denser plan gives the sampler real
/// granularity, so the sampled hop volume — and with it the overhead
/// number — is representative.
///
/// The caller asserts the overhead bar — see [`crate::run_by_id`]'s
/// `trace-smoke` pseudo-id.
pub fn smoke(arch: Architecture, n: usize, shards: usize, seed: u64) -> TraceSmokePoint {
    let mut spec =
        smoke_spec(arch, n, shards, Placement::RoundRobin, true, seed).with_trace(TraceSpec {
            sample_rate: SMOKE_SAMPLE_RATE,
            ..TraceSpec::default()
        });
    spec.plan.rate_per_sec = 50.0;
    let point = measure_trace_overhead(&spec, 2);
    let record = point.record("trace-smoke");
    TraceSmokePoint { point, record }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_profile::json;

    #[test]
    fn trace_experiment_gates_parity_and_builds_tables() {
        let r = run(48, 3, 42);
        assert!(r.identical, "traced engines diverged");
        assert_eq!(r.summary.len(), 3);
        assert_eq!(r.tree_table.len(), 1);
        assert!(!r.event_table.is_empty(), "no events traced");
        assert!(r.attribution_table.len() > 1, "no forwarding attributed");
        assert_eq!(r.records.len(), 1);
        let rec = &r.records[0];
        assert_eq!(rec.suite, "trace");
        assert!(rec.events > 0);
        assert!(rec.hops > 0);
        assert!(rec.wall_ms_on > 0.0 && rec.wall_ms_off > 0.0);
    }

    #[test]
    fn bench_record_renders_parseable_json() {
        let r = run(32, 2, 7);
        let text = r.records[0].to_json();
        let v = json::parse(&text).expect("record must parse as JSON");
        assert_eq!(v.get("suite").and_then(|s| s.as_str()), Some("trace"));
        assert!(v.get("overhead_frac").and_then(|o| o.as_f64()).is_some());
        assert_eq!(
            v.get("hops").and_then(|h| h.as_f64()).unwrap() as u64,
            r.records[0].hops
        );
    }

    #[test]
    fn tracing_is_passive() {
        let spec = trace_scenario(32, 2, 11);
        let p = measure_trace_overhead(&spec, 1);
        assert!(
            crate::scenario_run::outcomes_match(&p.off, &p.on),
            "tracing changed a result"
        );
        assert!(p.off.trace.is_none());
        assert!(p.on.trace.is_some());
    }

    #[test]
    fn sampling_cuts_the_buffer_without_perturbing_the_run() {
        let full = run_architecture(&trace_scenario(32, 1, 5), EngineKind::Sequential);
        let mut spec = trace_scenario(32, 1, 5);
        spec.trace = Some(TraceSpec {
            sample_rate: 0.25,
            ..TraceSpec::default()
        });
        let sampled = run_architecture(&spec, EngineKind::Sequential);
        assert!(crate::scenario_run::outcomes_match(&full, &sampled));
        let full_hops = full.trace.unwrap();
        let some_hops = sampled.trace.unwrap();
        assert!(!some_hops.is_empty() && some_hops.len() < full_hops.len());
        // The sampled buffer is exactly the filtered full buffer.
        let filtered: Vec<_> = full_hops
            .iter()
            .filter(|h| fed_trace::sampled(h.event, 0, 0.25))
            .copied()
            .collect();
        assert_eq!(some_hops, filtered);
    }
}
