//! FIG2 — the paper's Figure 2: topic-based accounting where benefit
//! includes the number of filters placed.
//!
//! We sweep per-node subscription heterogeneity (all peers 1 topic → wild
//! mixes) and report ratio fairness under the Figure 2 spec
//! (`benefit = delivered + #filters`). The paper's point: with a static
//! protocol, a peer with many subscriptions works the same as one with few
//! "although it will subject the system to a higher load"; the fair
//! protocol makes contribution follow the filter-weighted benefit.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::SimDuration;
use fed_workload::interest::Appetite;
use fed_workload::scenario::ScenarioSpec;

/// Result of the FIG2 experiment.
#[derive(Debug)]
pub struct Fig2Result {
    /// One row per (appetite, protocol).
    pub table: Table,
    /// (appetite label, classic jain, fair jain) per sweep point.
    pub points: Vec<(String, f64, f64)>,
}

/// Runs FIG2 at population size `n`.
pub fn run(n: usize, seed: u64) -> Fig2Result {
    let spec = RatioSpec::topic_based();
    let mut table = Table::new(
        format!("FIG2: fairness with filter-weighted benefit (n={n})"),
        &[
            "appetite",
            "protocol",
            "jain",
            "gini",
            "max/min",
            "reliability",
        ],
    );
    let appetites: Vec<(&str, Appetite)> = vec![
        ("uniform-1", Appetite::Fixed(1)),
        ("uniform-4", Appetite::Fixed(4)),
        ("mixed-1..8", Appetite::Uniform { lo: 1, hi: 8 }),
        (
            "bimodal-16/1",
            Appetite::Bimodal {
                heavy_fraction: 0.1,
                heavy: 16,
                light: 1,
            },
        ),
    ];
    let mut points = Vec::new();
    for (label, appetite) in appetites {
        let mut scenario = ScenarioSpec::fair_gossip(n, seed);
        scenario.appetite = appetite;
        let mut jains = Vec::new();
        for (proto, cfg) in [
            (
                "classic",
                GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
            ),
            (
                "fair",
                GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
            ),
        ] {
            let mut run = build_gossip_spec(&scenario, cfg, |_| Behavior::Honest);
            run.run();
            let audit = run.audit();
            let report = ratio_report(run.ledgers(), &spec);
            table.row_owned(vec![
                label.to_string(),
                proto.to_string(),
                fmt_f64(report.jain),
                fmt_f64(report.gini),
                fmt_f64(report.max_min),
                fmt_f64(audit.reliability()),
            ]);
            jains.push(report.jain);
        }
        points.push((label.to_string(), jains[0], jains[1]));
    }
    Fig2Result { table, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_wins_across_appetites() {
        let r = run(48, 13);
        assert_eq!(r.points.len(), 4);
        for (label, classic, fair) in &r.points {
            assert!(
                fair > classic,
                "{label}: fair {fair:.3} must beat classic {classic:.3}\n{}",
                r.table
            );
        }
    }
}
