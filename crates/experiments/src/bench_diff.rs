//! bench-diff — compare two `BENCH_*` JSON artifacts row by row.
//!
//! `fed-experiments bench-diff <old.json> <new.json> [--threshold F]`
//! reads both files as JSON arrays of flat records (the shape every
//! `BENCH_cluster.json` / `BENCH_profile.json` / `BENCH_timeseries.json`
//! writer emits), matches rows by their *configuration* fields (suite,
//! arch, n, shards, placement, …), and reports the per-row events/s
//! delta. A row whose throughput dropped by more than the threshold is a
//! regression and fails the command — CI diffs the fresh artifact
//! against the committed one (`git show HEAD:BENCH_cluster.json`).
//!
//! Rows without a throughput rate — the `BENCH_sweep.json` frontier and
//! aggregate rows — are compared on the directional sweep metrics
//! instead ([`FRONTIER_METRICS`]): fairness and reliability must not
//! drop, latency and forwarding cost must not rise, each by more than
//! the threshold. Those quantities are virtual-world deterministic, so
//! CI runs the sweep diff with `--threshold 0` — byte-equal or fail.
//!
//! Configurations appear many times in an appended artifact (one record
//! per historical run); the **last occurrence wins**, so the diff always
//! compares the most recent measurement on each side.

use fed_metrics::table::{fmt_f64, Table};
use fed_profile::json::{self, Value};
use std::collections::BTreeMap;
use std::path::Path;

/// Fields that are measurements, not configuration — excluded from the
/// row key. Everything else (strings, bools, config numbers) identifies
/// the row.
const MEASUREMENT_FIELDS: &[&str] = &[
    "events",
    "windows",
    "wall_ms",
    "events_per_sec",
    "wall_ms_off",
    "wall_ms_on",
    "overhead_frac",
    "events_per_sec_off",
    "events_per_sec_on",
    "execute_ms",
    "exchange_ms",
    "fill_ms",
    "barrier_ms",
    "idle_ms",
    "series",
    "identical",
    // BENCH_timeseries.json header measurements: the earliest strategy
    // handover (null until one fires) and the SWIM detector's mean
    // detection latency. Treating these as configuration would split a
    // row into spurious added/removed pairs whenever the measurement
    // moved — and a null handover would drop the row from the diff
    // entirely, since null has no scalar key representation.
    "handover_ms",
    "detection_latency_mean_us",
    // BENCH_sweep.json measurements: per-frontier-point axes and
    // per-architecture aggregates. `workload_index` names the generated
    // workload behind a frontier point — informational, and free to move
    // when the frontier reshuffles, so it must not split the row.
    "workload_index",
    "jain",
    "latency_p95_ms",
    "msgs_per_delivery",
    "reliability",
    "jain_mean",
    "latency_p95_mean_ms",
    "msgs_per_delivery_mean",
    "reliability_mean",
    "frontier_points",
];

/// Directional sweep metrics: `(field, higher_is_better)`. Rows without
/// a throughput rate (the `BENCH_sweep.json` shape) are compared on
/// these instead — a row regresses when any metric present on both
/// sides moves *adversely* past the threshold, so a fairness drop, a
/// latency increase or a forwarding-cost increase all trip CI, while
/// improvements of any size pass.
pub const FRONTIER_METRICS: &[(&str, bool)] = &[
    ("jain", true),
    ("jain_mean", true),
    ("reliability", true),
    ("reliability_mean", true),
    ("latency_p95_ms", false),
    ("latency_p95_mean_ms", false),
    ("msgs_per_delivery", false),
    ("msgs_per_delivery_mean", false),
];

/// Default regression threshold: a row fails when its events/s dropped
/// by more than this fraction. Generous because wall-clock throughput on
/// shared CI hardware is noisy.
pub const DEFAULT_THRESHOLD: f64 = 0.5;

fn scalar_repr(v: &Value) -> Option<String> {
    match v {
        Value::Str(s) => Some(s.clone()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Num(n) => Some(if n.fract() == 0.0 && n.abs() < 1e15 {
            format!("{}", *n as i64)
        } else {
            format!("{n}")
        }),
        _ => None,
    }
}

/// The configuration key of one record: every scalar field that is not a
/// measurement, sorted by name.
fn row_key(obj: &Value) -> Option<String> {
    let Value::Obj(map) = obj else { return None };
    let mut parts: BTreeMap<&str, String> = BTreeMap::new();
    for (k, v) in map {
        if MEASUREMENT_FIELDS.contains(&k.as_str()) {
            continue;
        }
        parts.insert(k.as_str(), scalar_repr(v)?);
    }
    if parts.is_empty() {
        return None;
    }
    Some(
        parts
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" "),
    )
}

/// The throughput metric of one record, when it carries one.
fn rate_of(obj: &Value) -> Option<f64> {
    obj.get("events_per_sec")
        .or_else(|| obj.get("events_per_sec_on"))
        .and_then(|v| v.as_f64())
}

fn index(text: &str, label: &str) -> Result<BTreeMap<String, Value>, String> {
    let doc = json::parse(text).map_err(|e| format!("{label}: not valid JSON: {e}"))?;
    let rows = doc
        .as_array()
        .ok_or_else(|| format!("{label}: top level is not a JSON array"))?;
    let mut map = BTreeMap::new();
    for row in rows {
        if let Some(key) = row_key(row) {
            // Later records of the same configuration replace earlier
            // ones: last occurrence wins.
            map.insert(key, row.clone());
        }
    }
    Ok(map)
}

/// Result of one bench diff.
#[derive(Debug)]
pub struct DiffReport {
    /// One row per configuration present in either file.
    pub table: Table,
    /// Configurations whose throughput regressed past the threshold.
    pub regressions: Vec<String>,
    /// Configurations compared on both sides.
    pub compared: usize,
}

/// Diffs two artifact texts. `threshold` is the allowed fractional
/// events/s drop before a row counts as a regression.
///
/// # Errors
///
/// Returns a message when either text is not a JSON array.
pub fn diff(old_text: &str, new_text: &str, threshold: f64) -> Result<DiffReport, String> {
    let old = index(old_text, "old")?;
    let new = index(new_text, "new")?;
    let mut table = Table::new(
        format!("BENCH-DIFF (threshold {})", fmt_f64(threshold)),
        &["row", "old events/s", "new events/s", "delta", "status"],
    );
    let mut regressions = Vec::new();
    let mut compared = 0usize;
    let dash = || "-".to_string();
    for (key, new_row) in &new {
        match old.get(key) {
            None => {
                table.row_owned(vec![
                    key.clone(),
                    dash(),
                    rate_of(new_row).map(fmt_f64).unwrap_or_else(dash),
                    dash(),
                    "added".to_string(),
                ]);
            }
            Some(old_row) => {
                compared += 1;
                match (rate_of(old_row), rate_of(new_row)) {
                    (Some(o), Some(n)) if o > 0.0 => {
                        let delta = n / o - 1.0;
                        let status = if delta < -threshold {
                            regressions.push(key.clone());
                            "REGRESSION".to_string()
                        } else {
                            "ok".to_string()
                        };
                        table.row_owned(vec![
                            key.clone(),
                            fmt_f64(o),
                            fmt_f64(n),
                            format!("{:+.1}%", delta * 100.0),
                            status,
                        ]);
                    }
                    _ => {
                        // No throughput on this pair: compare the
                        // directional sweep metrics instead, reporting
                        // the most adverse mover.
                        let mut worst: Option<(&str, f64, f64, f64)> = None;
                        for &(metric, higher_is_better) in FRONTIER_METRICS {
                            let o = old_row.get(metric).and_then(Value::as_f64);
                            let n = new_row.get(metric).and_then(Value::as_f64);
                            let (Some(o), Some(n)) = (o, n) else { continue };
                            if o <= 0.0 {
                                continue;
                            }
                            let delta = n / o - 1.0;
                            // Positive = adverse, whatever the direction.
                            let adverse = if higher_is_better { -delta } else { delta };
                            if worst.is_none_or(|w| adverse > w.3) {
                                worst = Some((metric, o, n, adverse));
                            }
                        }
                        match worst {
                            Some((metric, o, n, adverse)) => {
                                let status = if adverse > threshold {
                                    regressions.push(key.clone());
                                    "REGRESSION".to_string()
                                } else {
                                    "ok".to_string()
                                };
                                table.row_owned(vec![
                                    key.clone(),
                                    format!("{metric}={}", fmt_f64(o)),
                                    format!("{metric}={}", fmt_f64(n)),
                                    format!("{:+.1}%", (n / o - 1.0) * 100.0),
                                    status,
                                ]);
                            }
                            None => {
                                table.row_owned(vec![
                                    key.clone(),
                                    dash(),
                                    dash(),
                                    dash(),
                                    "ok".into(),
                                ]);
                            }
                        }
                    }
                }
            }
        }
    }
    for (key, old_row) in &old {
        if !new.contains_key(key) {
            table.row_owned(vec![
                key.clone(),
                rate_of(old_row).map(fmt_f64).unwrap_or_else(dash),
                dash(),
                dash(),
                "removed".to_string(),
            ]);
        }
    }
    Ok(DiffReport {
        table,
        regressions,
        compared,
    })
}

/// Diffs two artifact files on disk.
///
/// # Errors
///
/// Returns a message when a file cannot be read or parsed.
pub fn diff_files(
    old_path: impl AsRef<Path>,
    new_path: impl AsRef<Path>,
    threshold: f64,
) -> Result<DiffReport, String> {
    let old_path = old_path.as_ref();
    let new_path = new_path.as_ref();
    let old = std::fs::read_to_string(old_path)
        .map_err(|e| format!("cannot read {}: {e}", old_path.display()))?;
    let new = std::fs::read_to_string(new_path)
        .map_err(|e| format!("cannot read {}: {e}", new_path.display()))?;
    diff(&old, &new, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(suite: &str, shards: usize, rate: f64) -> String {
        format!(
            "{{\"suite\":\"{suite}\",\"arch\":\"fair-gossip\",\"n\":1000,\
             \"shards\":{shards},\"events\":5,\"events_per_sec\":{rate}}}"
        )
    }

    fn doc(rows: &[String]) -> String {
        format!("[{}]", rows.join(","))
    }

    #[test]
    fn matching_rows_within_threshold_pass() {
        let old = doc(&[row("smoke", 4, 1000.0)]);
        let new = doc(&[row("smoke", 4, 900.0)]);
        let r = diff(&old, &new, 0.2).unwrap();
        assert_eq!(r.compared, 1);
        assert!(r.regressions.is_empty(), "{}", r.table);
    }

    #[test]
    fn regression_past_threshold_is_flagged() {
        let old = doc(&[row("smoke", 4, 1000.0)]);
        let new = doc(&[row("smoke", 4, 400.0)]);
        let r = diff(&old, &new, 0.5).unwrap();
        assert_eq!(r.regressions.len(), 1);
        assert!(r.regressions[0].contains("suite=smoke"));
    }

    #[test]
    fn last_occurrence_of_a_configuration_wins() {
        let old = doc(&[row("smoke", 4, 100.0), row("smoke", 4, 1000.0)]);
        let new = doc(&[row("smoke", 4, 950.0)]);
        let r = diff(&old, &new, 0.2).unwrap();
        assert!(r.regressions.is_empty(), "old should be 1000, not 100");
        let new = doc(&[row("smoke", 4, 100.0)]);
        let r = diff(&old, &new, 0.2).unwrap();
        assert_eq!(r.regressions.len(), 1);
    }

    #[test]
    fn added_and_removed_rows_are_reported_not_failed() {
        let old = doc(&[row("smoke", 4, 1000.0)]);
        let new = doc(&[row("smoke", 8, 1000.0)]);
        let r = diff(&old, &new, 0.2).unwrap();
        assert_eq!(r.compared, 0);
        assert!(r.regressions.is_empty());
        assert_eq!(r.table.len(), 2, "one added + one removed row");
    }

    #[test]
    fn rows_without_a_rate_metric_are_tolerated() {
        let old = r#"[{"suite":"timeseries","arch":"broker","n":64,"shards":2,"identical":true,"series":[]}]"#;
        let r = diff(old, old, 0.2).unwrap();
        assert_eq!(r.compared, 1);
        assert!(r.regressions.is_empty());
    }

    /// A committed pair of real-shape `BENCH_timeseries.json` artifacts:
    /// the header's measured fields (`handover_ms`, including its null
    /// form, and `detection_latency_mean_us`) moved between the runs,
    /// yet both rows still pair up by configuration — nothing is
    /// silently dropped or misread as an added/removed configuration.
    #[test]
    fn timeseries_header_measurements_do_not_split_rows() {
        let old = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/data/bench_timeseries_old.json"
        ));
        let new = include_str!(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/data/bench_timeseries_new.json"
        ));
        let r = diff(old, new, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(
            r.compared, 2,
            "both timeseries rows must pair up:\n{}",
            r.table
        );
        assert!(r.regressions.is_empty());
        assert_eq!(r.table.len(), 2, "no added/removed rows:\n{}", r.table);
        // The key is pure configuration — measured header fields and the
        // series itself stay out of it.
        let doc = json::parse(new).unwrap();
        let key = row_key(&doc.as_array().unwrap()[1]).unwrap();
        assert!(key.contains("arch=hybrid") && key.contains("seed=42"));
        for measured in ["handover_ms=", "detection_latency_mean_us=", "series="] {
            assert!(
                !key.contains(measured),
                "{measured} leaked into the key {key:?}"
            );
        }
    }

    fn frontier_row(suite: &str, point: usize, jain: f64, lat: f64, cost: f64) -> String {
        format!(
            "{{\"suite\": \"{suite}\", \"arch\": \"fair-gossip\", \"sweep_seed\": 42, \
             \"workloads\": 48, \"point\": {point}, \"workload_index\": {point}, \
             \"jain\": {jain:.6}, \"latency_p95_ms\": {lat:.6}, \
             \"msgs_per_delivery\": {cost:.6}, \"reliability\": 1.000000}}"
        )
    }

    #[test]
    fn identical_frontier_rows_pass_at_zero_threshold() {
        let old = doc(&[frontier_row("sweep", 0, 0.9, 40.0, 6.0)]);
        let r = diff(&old, &old, 0.0).unwrap();
        assert_eq!(r.compared, 1);
        assert!(r.regressions.is_empty(), "{}", r.table);
    }

    #[test]
    fn adverse_frontier_moves_are_regressions() {
        let old = doc(&[frontier_row("sweep", 0, 0.9, 40.0, 6.0)]);
        // Fairness dropped past the threshold.
        let worse_jain = doc(&[frontier_row("sweep", 0, 0.6, 40.0, 6.0)]);
        let r = diff(&old, &worse_jain, 0.2).unwrap();
        assert_eq!(r.regressions.len(), 1, "{}", r.table);
        // Latency rose past the threshold.
        let worse_lat = doc(&[frontier_row("sweep", 0, 0.9, 60.0, 6.0)]);
        let r = diff(&old, &worse_lat, 0.2).unwrap();
        assert_eq!(r.regressions.len(), 1, "{}", r.table);
        // Forwarding cost rose past the threshold.
        let worse_cost = doc(&[frontier_row("sweep", 0, 0.9, 40.0, 9.0)]);
        let r = diff(&old, &worse_cost, 0.2).unwrap();
        assert_eq!(r.regressions.len(), 1, "{}", r.table);
    }

    #[test]
    fn favorable_frontier_moves_of_any_size_pass() {
        let old = doc(&[frontier_row("sweep", 0, 0.5, 40.0, 6.0)]);
        let better = doc(&[frontier_row("sweep", 0, 1.0, 10.0, 2.0)]);
        let r = diff(&old, &better, 0.2).unwrap();
        assert_eq!(r.compared, 1);
        assert!(r.regressions.is_empty(), "{}", r.table);
    }

    #[test]
    fn frontier_measurements_stay_out_of_the_row_key() {
        // A frontier reshuffle moves every measurement (including the
        // originating workload index) but the row must still pair up by
        // (suite, arch, sweep_seed, workloads, point).
        let old = doc(&[frontier_row("sweep", 0, 0.9, 40.0, 6.0)]);
        let new = doc(&[frontier_row("sweep", 0, 0.91, 39.0, 5.9)
            .replace("\"workload_index\": 0", "\"workload_index\": 17")]);
        let r = diff(&old, &new, DEFAULT_THRESHOLD).unwrap();
        assert_eq!(r.compared, 1, "{}", r.table);
        assert!(r.regressions.is_empty());
    }

    #[test]
    fn malformed_input_is_an_error() {
        assert!(diff("not json", "[]", 0.2).is_err());
        assert!(diff("{}", "[]", 0.2).is_err());
    }
}
