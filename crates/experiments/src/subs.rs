//! E-SUBS — subscription maintenance fairness (paper §5.1).
//!
//! A wave of subscriptions to topics of very different popularity flows
//! through random walks. Without compensation, relays absorb the cost
//! ("some unlucky processes may be far more often involved in forwarding
//! subscription requests than others"); with the compensation scheme the
//! relays' ratios stay at 1 and the cost lands on the subscribers.

use fed_core::ledger::RatioSpec;
use fed_core::submgmt::{SubWalkCmd, SubWalkConfig, SubWalkNode, WalkAccounting};
use fed_metrics::table::{fmt_f64, Table};
use fed_pubsub::TopicId;
use fed_sim::network::{LatencyModel, NetworkModel};
use fed_sim::{NodeId, SimDuration, SimTime, Simulation};
use fed_util::fairness::FairnessReport;

/// Result of the E-SUBS experiment.
#[derive(Debug)]
pub struct SubsResult {
    /// Comparison table.
    pub table: Table,
    /// Ratio fairness (relays only) without compensation.
    pub uncompensated_relay_jain: f64,
    /// Ratio fairness (relays only) with compensation.
    pub compensated_relay_jain: f64,
    /// Mean hops for the popular topic.
    pub popular_hops: f64,
    /// Mean hops for the rare topic.
    pub rare_hops: f64,
}

fn scenario(n: usize, accounting: WalkAccounting, seed: u64) -> (Simulation<SubWalkNode>, usize) {
    let popular = TopicId::new(0);
    let rare = TopicId::new(1);
    let popular_members = n / 4;
    let rare_members = 2;
    let config = SubWalkConfig {
        walk_budget: 256,
        accounting,
    };
    let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)));
    let mut sim = Simulation::new(n, net, seed, move |id, _| {
        let mut initial = Vec::new();
        if id.index() < popular_members {
            initial.push(popular);
        }
        if id.index() >= popular_members && id.index() < popular_members + rare_members {
            initial.push(rare);
        }
        SubWalkNode::new(id, n, config, initial)
    });
    // The last quarter of the population subscribes (alternating popular
    // and rare targets, spread over time); everyone between the initial
    // members and the subscribers is a *pure relay* — exactly the "unlucky
    // process" of §5.1, doing maintenance work for topics it never asked
    // about.
    let first_subscriber = 3 * n / 4;
    for (k, i) in (first_subscriber..n).enumerate() {
        let topic = if k % 2 == 0 { popular } else { rare };
        sim.schedule_command(
            SimTime::from_millis(50 * k as u64),
            NodeId::new(i as u32),
            SubWalkCmd::Subscribe(topic),
        );
    }
    (sim, first_subscriber)
}

/// Runs E-SUBS at population size `n`.
pub fn run(n: usize, seed: u64) -> SubsResult {
    let spec = RatioSpec::topic_based();
    let mut table = Table::new(
        format!("E-SUBS: subscription-walk maintenance cost (n={n})"),
        &[
            "accounting",
            "relay jain",
            "relay max/min",
            "mean hops popular",
            "mean hops rare",
        ],
    );
    let mut reports: Vec<FairnessReport> = Vec::new();
    let mut hops = (0.0, 0.0);
    for accounting in [WalkAccounting::Uncompensated, WalkAccounting::Compensated] {
        let (mut sim, first_subscriber) = scenario(n, accounting, seed);
        sim.run_until(SimTime::from_secs(120));
        // Pure-relay fairness: nodes that relayed walks but are neither
        // group members nor subscribers. Uncompensated, their ratio equals
        // their raw relay count (benefit floored by epsilon); compensated,
        // it is exactly 1.
        let relay_ratios: Vec<f64> = sim
            .nodes()
            .filter(|(_, node)| {
                node.total_relayed() > 0
                    && node.memberships().is_empty()
                    && node.outcomes().is_empty()
            })
            .map(|(_, node)| node.ledger().ratio(&spec))
            .collect();
        let report = FairnessReport::from_values(&relay_ratios);
        // Hop statistics per topic over subscriber outcomes.
        let mut pop = (0u64, 0u64);
        let mut rare = (0u64, 0u64);
        for (id, node) in sim.nodes() {
            if id.index() < first_subscriber {
                continue;
            }
            for o in node.outcomes() {
                let slot = if o.topic == TopicId::new(0) {
                    &mut pop
                } else {
                    &mut rare
                };
                slot.0 += o.hops as u64;
                slot.1 += 1;
            }
        }
        let pop_mean = pop.0 as f64 / pop.1.max(1) as f64;
        let rare_mean = rare.0 as f64 / rare.1.max(1) as f64;
        hops = (pop_mean, rare_mean);
        table.row_owned(vec![
            format!("{accounting:?}"),
            fmt_f64(report.jain),
            fmt_f64(report.max_min),
            fmt_f64(pop_mean),
            fmt_f64(rare_mean),
        ]);
        reports.push(report);
    }
    SubsResult {
        table,
        uncompensated_relay_jain: reports[0].jain,
        compensated_relay_jain: reports[1].jain,
        popular_hops: hops.0,
        rare_hops: hops.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compensation_fixes_relay_fairness() {
        let r = run(96, 17);
        assert!(
            r.compensated_relay_jain > 0.99,
            "compensated relays sit at ratio 1: {}\n{}",
            r.compensated_relay_jain,
            r.table
        );
        assert!(
            r.compensated_relay_jain > r.uncompensated_relay_jain,
            "{}",
            r.table
        );
        assert!(
            r.rare_hops > r.popular_hops,
            "rare topics must cost more relay hops\n{}",
            r.table
        );
    }
}
