//! FIG3 — the paper's Figure 3: expressive selection where contribution is
//! modulated by **fanout × gossip message size** (bytes) and benefit is
//! deliveries only.
//!
//! The ablation the paper sketches: which knob matters? We compare
//! `{static F, static N}`, `{adaptive F}`, `{adaptive N}` and
//! `{adaptive both}` under byte-denominated accounting.

use crate::harness::build_gossip_spec;
use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_metrics::fairness::ratio_report;
use fed_metrics::table::{fmt_f64, Table};
use fed_sim::SimDuration;
use fed_workload::scenario::ScenarioSpec;

/// Result of the FIG3 experiment.
#[derive(Debug)]
pub struct Fig3Result {
    /// One row per knob configuration.
    pub table: Table,
    /// (config label, jain, reliability) per configuration.
    pub points: Vec<(String, f64, f64)>,
}

fn config_variant(adapt_fanout: bool, adapt_size: bool) -> GossipConfig {
    let mut cfg = GossipConfig::fair_expressive(8, 16, SimDuration::from_millis(100));
    cfg.adapt_fanout = adapt_fanout;
    cfg.adapt_msg_size = adapt_size;
    if !adapt_fanout && !adapt_size {
        cfg.ratio_correction_gain = 0.0;
    }
    cfg
}

/// Runs FIG3 at population size `n`.
pub fn run(n: usize, seed: u64) -> Fig3Result {
    let scenario = ScenarioSpec::fair_gossip(n, seed);
    let spec = RatioSpec::expressive();
    let mut table = Table::new(
        format!("FIG3: expressive (byte) fairness by adaptation knob (n={n})"),
        &[
            "knobs",
            "jain",
            "gini",
            "max/min",
            "bytes/node(mean)",
            "reliability",
        ],
    );
    let variants = [
        ("static-F,static-N", false, false),
        ("adaptive-F", true, false),
        ("adaptive-N", false, true),
        ("adaptive-F+N", true, true),
    ];
    let mut points = Vec::new();
    for (label, af, an) in variants {
        let mut run = build_gossip_spec(&scenario, config_variant(af, an), |_| Behavior::Honest);
        run.run();
        let audit = run.audit();
        let ledgers = run.ledgers();
        let report = ratio_report(ledgers.iter().copied(), &spec);
        let mean_bytes =
            ledgers.iter().map(|l| l.contribution(&spec)).sum::<f64>() / ledgers.len() as f64;
        table.row_owned(vec![
            label.to_string(),
            fmt_f64(report.jain),
            fmt_f64(report.gini),
            fmt_f64(report.max_min),
            fmt_f64(mean_bytes),
            fmt_f64(audit.reliability()),
        ]);
        points.push((label.to_string(), report.jain, audit.reliability()));
    }
    Fig3Result { table, points }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptation_improves_byte_fairness() {
        let r = run(48, 21);
        let jain_of = |label: &str| {
            r.points
                .iter()
                .find(|(l, _, _)| l == label)
                .map(|(_, j, _)| *j)
                .expect("label present")
        };
        let static_j = jain_of("static-F,static-N");
        let both_j = jain_of("adaptive-F+N");
        assert!(
            both_j > static_j,
            "adaptive-F+N {both_j:.3} must beat static {static_j:.3}\n{}",
            r.table
        );
        // every variant keeps the system reliable
        for (label, _, rel) in &r.points {
            assert!(*rel > 0.95, "{label} reliability {rel}");
        }
    }
}
