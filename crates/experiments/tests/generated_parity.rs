//! Differential mini-fuzz: generated scenarios seq-vs-cluster.
//!
//! Runs a fixed prefix of the seed-derived generated workload family
//! (`fed_workload::generated_spec` — the same generator behind the
//! `sweep` experiment) on both engines and asserts bit-identical
//! outcomes. The generated space mixes population sizes, appetites,
//! latency models, loss, churn, fault schedules and mobility traces, so
//! this is a broad randomized parity gate that stays deterministic: the
//! same specs every run, reproducible from `(FUZZ_SEED, index)` alone.
//!
//! On a mismatch the offending spec is dumped as a repro scenario file
//! (every generated spec is representable by construction) and the test
//! panics with its path — `fed-experiments parity <path>` replays it.

use fed_experiments::harness::{run_architecture, EngineKind};
use fed_experiments::scenario_run::outcomes_match;
use fed_workload::scenario_file::to_toml;
use fed_workload::{generated_spec, Architecture};

/// The sweep seed of the fuzz family — distinct from the `sweep`
/// experiment's CLI seed so the two suites sample different cells.
const FUZZ_SEED: u64 = 0xF0D5;

/// Generated workloads per run; each index also picks the architecture
/// and the cluster shard count, so the prefix covers all eight
/// architectures at several shard counts.
const FUZZ_CASES: u64 = 16;

const SHARD_CYCLE: [usize; 3] = [2, 4, 7];

#[test]
fn generated_scenarios_are_engine_agnostic() {
    for index in 0..FUZZ_CASES {
        let arch = Architecture::ALL[index as usize % Architecture::ALL.len()];
        let shards = SHARD_CYCLE[index as usize % SHARD_CYCLE.len()];
        let spec = generated_spec(FUZZ_SEED, index)
            .with_arch(arch)
            .with_shards(shards);
        let sequential = run_architecture(&spec, EngineKind::Sequential);
        let cluster = run_architecture(&spec, EngineKind::Cluster);
        if !outcomes_match(&sequential, &cluster) {
            let repro = std::env::temp_dir().join(format!(
                "fed_generated_parity_repro_{FUZZ_SEED:x}_{index}.toml"
            ));
            let toml = to_toml(&spec).expect("generated specs are representable");
            std::fs::write(&repro, toml).expect("repro spec must be writable");
            panic!(
                "generated scenario (seed {FUZZ_SEED:#x}, index {index}, arch {arch}, \
                 {shards} shards) diverged between the engines; repro spec written to \
                 {} — replay with `fed-experiments parity {}`",
                repro.display(),
                repro.display()
            );
        }
    }
}

/// The repro path itself stays honest: a generated spec dumped with
/// `to_toml` parses back to the exact spec that ran, so the file the
/// fuzz test writes on failure replays the same simulation.
#[test]
fn fuzz_repro_dumps_round_trip() {
    for index in 0..FUZZ_CASES {
        let spec = generated_spec(FUZZ_SEED, index)
            .with_arch(Architecture::ALL[index as usize % Architecture::ALL.len()]);
        let toml = to_toml(&spec).expect("generated specs are representable");
        assert_eq!(
            fed_workload::spec_from_toml(&toml).expect("dump parses"),
            spec,
            "index {index}: repro dump diverged from the spec that ran"
        );
    }
}
