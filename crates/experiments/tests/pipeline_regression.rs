//! Pipeline regression gate for the overlapped window exchange.
//!
//! `tests/data/pre_pipeline_fair-vs-static.trace.json` is the committed
//! Chrome trace of the `fair-vs-static` scenario recorded *before* the
//! window protocol was pipelined: workers drained every inbound batch
//! up front and idled through a coordinator round trip per window, so
//! its shard slices carry a large `wait_ns` share (≈ 0.59 of shard wall
//! clock on the recording machine). (It lives under `tests/data/`
//! because ad-hoc `TRACE_*.json` exports are gitignored.) This test
//! re-runs the same scenario profiled and
//! asserts the genuine stall share — barrier (straggler wait at the
//! reduction) plus idle — stays below that recorded pre-change share.
//! Time a worker now spends blocked at a mid-window absorption point is
//! classified as pipeline fill, not stall, so a return of the
//! stop-the-world exchange would push the stall share back up and fail
//! here.

use fed_experiments::harness::{run_architecture, EngineKind};
use fed_experiments::scenario_run::{display_name, load_file, resolve_target};
use fed_profile::json::{self, Value};
use fed_profile::ProfileSpec;

/// Sums `field` over every trace slice that carries it in its `args`.
fn sum_arg(doc: &Value, field: &str) -> f64 {
    let Some(events) = doc.get("traceEvents").and_then(Value::as_array) else {
        panic!("trace has no traceEvents array");
    };
    events
        .iter()
        .filter_map(|e| e.get("args"))
        .filter_map(|args| args.get(field))
        .filter_map(Value::as_f64)
        .sum()
}

#[test]
fn stall_share_stays_below_the_recorded_pre_pipeline_profile() {
    let baseline_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/pre_pipeline_fair-vs-static.trace.json"
    );
    let baseline_text =
        std::fs::read_to_string(baseline_path).expect("committed pre-change trace must exist");
    let baseline = json::parse(&baseline_text).expect("committed trace must parse");
    let base_execute = sum_arg(&baseline, "execute_ns");
    let base_exchange = sum_arg(&baseline, "exchange_ns");
    let base_wait = sum_arg(&baseline, "wait_ns") + sum_arg(&baseline, "fill_ns");
    let base_total = base_execute + base_exchange + base_wait;
    assert!(base_total > 0.0, "empty baseline trace proves nothing");
    let base_share = base_wait / base_total;
    // The committed pre-pipelining recording stalled for the majority of
    // shard wall clock; if the baseline is ever re-recorded with a
    // healthy share this gate stops being meaningful, so insist on it.
    assert!(
        base_share > 0.3,
        "baseline stall share {base_share:.3} is already low — \
         was the trace re-recorded after the pipelined exchange landed?"
    );

    let path = resolve_target("@fair-vs-static");
    let file = load_file(&path).expect("committed scenario must load");
    let name = display_name(&path, &file);
    let mut spec = file.spec;
    spec.profile = Some(ProfileSpec::default());
    let outcome = run_architecture(&spec, EngineKind::Cluster);
    let profile = outcome.profiling.as_ref().expect("profiling was on");
    let phases = profile.phases();
    let total = (phases.execute_ns
        + phases.exchange_ns
        + phases.fill_ns
        + phases.barrier_ns
        + phases.idle_ns) as f64;
    assert!(total > 0.0, "{name}: profiled run recorded no wall clock");
    let stall_share = (phases.barrier_ns + phases.idle_ns) as f64 / total;
    eprintln!(
        "{name}: stall share {stall_share:.3} (barrier {:.1} ms, idle {:.1} ms, \
         fill {:.1} ms, execute {:.1} ms) vs recorded pre-change {base_share:.3}",
        phases.barrier_ns as f64 / 1e6,
        phases.idle_ns as f64 / 1e6,
        phases.fill_ns as f64 / 1e6,
        phases.execute_ns as f64 / 1e6,
    );
    assert!(
        stall_share < base_share,
        "{name}: barrier+idle share {stall_share:.3} did not drop below the \
         recorded pre-pipelining share {base_share:.3} — the per-window \
         stop-the-world exchange is back"
    );
}
