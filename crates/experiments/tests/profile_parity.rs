//! Work-counter parity: for the same spec, the sequential engine's
//! profiler and the sharded engine's merged per-shard profilers must
//! produce **bit-identical** deterministic [`WorkCounters`] at every
//! shard count — across placements, window policies, churn and a
//! flash-crowd burst — and attaching a profiler must never perturb the
//! virtual-world outcome.
//!
//! This is the profiling twin of `telemetry_parity.rs`: that suite pins
//! what the probes see, this one pins what the profiler counts. Only
//! the deterministic counters are gated; wall-clock phase timings and
//! scheduler-geometry counters (overflow hits, mailbox traffic) are
//! reported, not compared.

use fed_experiments::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_profile::{ProfileSpec, WorkCounters};
use fed_sim::SimTime;
use fed_telemetry::TelemetrySpec;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::{FlashCrowd, PubPlan};
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};
use proptest::prelude::*;

/// A small, busy profiled scenario. Telemetry rides along so the
/// `probe_calls` counter is exercised, not identically zero.
fn spec(arch: Architecture, n: usize, churn: bool, flash: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, 42);
    spec.plan = PubPlan {
        rate_per_sec: 12.0,
        duration: SimTime::from_secs(3),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: flash.then_some(FlashCrowd {
            at: SimTime::from_millis(2_500),
            topic_zipf_s: 3.0,
            rate_factor: 3.0,
        }),
    };
    if churn {
        spec.churn = Some(ChurnPlan {
            mean_session_secs: 2.0,
            mean_downtime_secs: 1.0,
            churning_fraction: 0.25,
            duration: SimTime::from_secs(3),
            warmup: SimTime::from_secs(1),
        });
    }
    spec.telemetry = Some(TelemetrySpec::default());
    spec.with_profile(ProfileSpec::default())
}

/// Sanity guard: a parity assertion over counters that never moved
/// proves nothing.
fn live_work(outcome: &ArchOutcome, what: &str) -> WorkCounters {
    let profile = outcome.profiling.as_ref().expect("profiling enabled");
    let work = profile.merged_work();
    assert!(work.events > 0, "{what}: profiler saw no events");
    assert!(work.queue_pops > 0, "{what}: profiler saw no queue pops");
    assert!(work.msgs_sent > 0, "{what}: profiler saw no sends");
    assert!(work.probe_calls > 0, "{what}: profiler saw no probe calls");
    assert!(
        work.queue_pushes >= work.queue_pops,
        "{what}: popped more than was ever pushed"
    );
    work
}

fn assert_work_parity(spec: &ScenarioSpec, shard_counts: &[usize]) {
    let expected = run_architecture(spec, EngineKind::Sequential);
    let expected_work = live_work(&expected, &format!("{} sequential", spec.arch));
    for &shards in shard_counts {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        let got_work = live_work(&got, &format!("{} at {shards} shards", spec.arch));
        assert_eq!(
            got_work, expected_work,
            "{} with {shards} shards: work counters diverged",
            spec.arch
        );
        // The profiler is passive: the virtual world itself must match.
        assert_eq!(
            got.deliveries, expected.deliveries,
            "{} with {shards} shards: deliveries diverged under profiling",
            spec.arch
        );
        assert_eq!(
            got.events, expected.events,
            "{} with {shards} shards: event counts diverged under profiling",
            spec.arch
        );
    }
}

#[test]
fn fair_gossip_work_parity_across_shard_counts() {
    assert_work_parity(
        &spec(Architecture::FairGossip, 96, false, false),
        &[1, 2, 4, 7],
    );
}

#[test]
fn fair_gossip_work_parity_under_churn_and_flash_crowd() {
    assert_work_parity(
        &spec(Architecture::FairGossip, 96, true, true),
        &[1, 2, 4, 7],
    );
}

#[test]
fn splitstream_work_parity_under_churn_and_flash_crowd() {
    assert_work_parity(
        &spec(Architecture::SplitStream, 96, true, true),
        &[1, 2, 4, 7],
    );
}

/// Placement only moves nodes between shards; the merged counters must
/// not notice. The broker is the adversarial case — everything funnels
/// through node 0, so `Block` puts the whole hot path on one shard.
#[test]
fn work_parity_is_placement_invariant() {
    let base = spec(Architecture::Broker, 96, false, true);
    let expected = live_work(
        &run_architecture(&base, EngineKind::Sequential),
        "broker sequential",
    );
    for placement in [Placement::RoundRobin, Placement::Block, Placement::Balanced] {
        let sharded = base.clone().with_shards(4).with_placement(placement);
        let got = live_work(
            &run_architecture(&sharded, EngineKind::Cluster),
            &format!("broker {placement:?}"),
        );
        assert_eq!(got, expected, "placement {placement:?} moved the counters");
    }
}

/// Window sizing is a pure scheduling knob; adaptive vs fixed must agree
/// on every deterministic counter, including under churn.
#[test]
fn work_parity_is_window_policy_invariant() {
    let base = spec(Architecture::FairGossip, 96, true, false);
    let expected = live_work(
        &run_architecture(&base, EngineKind::Sequential),
        "fair-gossip sequential",
    );
    for adaptive in [true, false] {
        let sharded = base.clone().with_shards(4).with_adaptive_window(adaptive);
        let got = live_work(
            &run_architecture(&sharded, EngineKind::Cluster),
            &format!("fair-gossip adaptive={adaptive}"),
        );
        assert_eq!(got, expected, "adaptive={adaptive} moved the counters");
    }
}

/// Every architecture passes the gate at one representative shard count
/// with both stressors on.
#[test]
fn every_architecture_work_parity_at_three_shards() {
    for arch in Architecture::ALL {
        assert_work_parity(&spec(arch, 64, true, true), &[3]);
    }
}

/// Profiler attached vs detached: the observable outcome (deliveries,
/// ledgers, stats, events, telemetry) is bit-identical — the profiler
/// is free of side effects on either engine.
#[test]
fn profiling_never_perturbs_the_run() {
    let with = spec(Architecture::FairGossip, 64, true, true);
    let mut without = with.clone();
    without.profile = None;
    for engine in [EngineKind::Sequential, EngineKind::Cluster] {
        let profiled = run_architecture(&with.clone().with_shards(3), engine);
        let bare = run_architecture(&without.clone().with_shards(3), engine);
        assert_eq!(profiled.deliveries, bare.deliveries);
        assert_eq!(profiled.ledgers, bare.ledgers);
        assert_eq!(profiled.stats, bare.stats);
        assert_eq!(profiled.events, bare.events);
        assert_eq!(profiled.telemetry, bare.telemetry);
        assert!(profiled.profiling.is_some() && bare.profiling.is_none());
    }
}

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    (0..Architecture::ALL.len()).prop_map(|i| Architecture::ALL[i])
}

/// A small, fast profiled scenario for the property sweep: n ≤ 48, a
/// two-second publication burst.
fn small_spec(arch: Architecture, n: usize, seed: u64, churn: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 8.0,
        duration: SimTime::from_secs(2),
        topic_zipf_s: 1.0,
        payload_bytes: 32,
        warmup: SimTime::from_millis(500),
        flash: None,
    };
    if churn {
        spec.churn = Some(ChurnPlan {
            mean_session_secs: 2.0,
            mean_downtime_secs: 1.0,
            churning_fraction: 0.2,
            duration: SimTime::from_secs(2),
            warmup: SimTime::from_millis(500),
        });
    }
    spec.with_profile(ProfileSpec::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Randomized profiled scenarios agree across engines at an
    /// arbitrary shard count. Telemetry stays off here, so this also
    /// covers the `probe_calls == 0` corner.
    #[test]
    fn randomized_work_counters_are_engine_agnostic(
        arch in arch_strategy(),
        n in 2usize..=48,
        seed in any::<u64>(),
        shards in 1usize..=8,
        churn in any::<bool>(),
    ) {
        let spec = small_spec(arch, n, seed, churn);
        let expected = run_architecture(&spec, EngineKind::Sequential);
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        let (exp_p, got_p) = (
            expected.profiling.as_ref().expect("profiling enabled"),
            got.profiling.as_ref().expect("profiling enabled"),
        );
        prop_assert_eq!(
            got_p.merged_work(),
            exp_p.merged_work(),
            "{} n={} shards={} churn={}: work counters diverged",
            arch, n, shards, churn
        );
        prop_assert_eq!(&got.deliveries, &expected.deliveries);
        prop_assert_eq!(got.events, expected.events);
    }
}
