//! Property-based cross-engine parity: for *randomized* small scenarios —
//! arbitrary seed, population, architecture, shard count, optional churn —
//! the sequential engine and the sharded cluster must agree bit for bit
//! on delivery logs, fairness ledgers and transport statistics.
//!
//! This generalizes the fixed-scenario `cross_engine` suite: rather than
//! hand-picked workloads, the shard-invariance contract is hammered over
//! the scenario space the spec can describe.

use fed_experiments::harness::{run_architecture, EngineKind};
use fed_sim::SimTime;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, ScenarioSpec};
use proptest::prelude::*;

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    (0..Architecture::ALL.len()).prop_map(|i| Architecture::ALL[i])
}

/// A small, fast scenario: n ≤ 64, a two-second publication burst.
fn small_spec(arch: Architecture, n: usize, seed: u64, churn: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 8.0,
        duration: SimTime::from_secs(2),
        topic_zipf_s: 1.0,
        payload_bytes: 32,
        warmup: SimTime::from_millis(500),
        flash: None,
    };
    if churn {
        spec.churn = Some(ChurnPlan {
            mean_session_secs: 2.0,
            mean_downtime_secs: 1.0,
            churning_fraction: 0.2,
            duration: SimTime::from_secs(2),
            warmup: SimTime::from_millis(500),
        });
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized scenarios agree across engines at an arbitrary shard
    /// count.
    #[test]
    fn randomized_scenarios_are_engine_agnostic(
        arch in arch_strategy(),
        n in 2usize..=64,
        seed in any::<u64>(),
        shards in 1usize..=8,
        churn in any::<bool>(),
    ) {
        let spec = small_spec(arch, n, seed, churn);
        let expected = run_architecture(&spec, EngineKind::Sequential);
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        prop_assert_eq!(
            &got.deliveries,
            &expected.deliveries,
            "{} n={} shards={} churn={}: delivery logs diverged",
            arch, n, shards, churn
        );
        prop_assert_eq!(
            &got.ledgers,
            &expected.ledgers,
            "{} n={} shards={} churn={}: ledgers diverged",
            arch, n, shards, churn
        );
        prop_assert_eq!(
            &got.stats,
            &expected.stats,
            "{} n={} shards={} churn={}: transport stats diverged",
            arch, n, shards, churn
        );
        prop_assert_eq!(got.events, expected.events);
    }
}
