//! Robustness parity gates: the SWIM failure detector, scheduled fault
//! injection and adaptive strategy switching must all be engine- and
//! shard-invariant.
//!
//! Every test runs the same spec on the sequential engine and on the
//! cluster at shard counts {1, 2, 4, 7}, asserting the full outcome —
//! delivery logs, fairness ledgers, transport statistics, event counts,
//! telemetry and the SWIM observation logs — is bit-identical. Faults
//! and failure detection are deterministic simulation data, never an
//! excuse for divergence.

use fed_experiments::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_experiments::scenario_run::outcomes_match;
use fed_membership::swim::SwimConfig;
use fed_sim::network::{
    DelayFault, FaultSchedule, MobilitySegment, MobilityTrace, OnewayFault, PartitionFault,
};
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::TelemetrySpec;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::{FlashCrowd, PubPlan};
use fed_workload::scenario::{Architecture, ScenarioSpec};

const PARITY_SHARDS: [usize; 4] = [1, 2, 4, 7];

/// A gossip scenario with the detector armed, busy enough to exercise
/// probes, ping-reqs, suspicions and piggybacked dissemination.
fn detector_spec(arch: Architecture, n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(4),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec.with_membership(SwimConfig::standard())
}

/// Runs the parity sweep and returns the sequential outcome for further
/// assertions.
fn assert_parity(spec: &ScenarioSpec, what: &str) -> ArchOutcome {
    let expected = run_architecture(spec, EngineKind::Sequential);
    assert!(
        expected.total_deliveries() > 0,
        "{what}: dead scenario proves nothing"
    );
    for shards in PARITY_SHARDS {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        assert_eq!(
            got.swim, expected.swim,
            "{what}: SWIM observation logs diverged at {shards} shards"
        );
        assert_eq!(
            got.handovers, expected.handovers,
            "{what}: handover instants diverged at {shards} shards"
        );
        assert!(
            outcomes_match(&expected, &got),
            "{what}: outcome diverged at {shards} shards"
        );
    }
    expected
}

/// Mega-churn: a quarter of the population cycling through 1.5 s
/// sessions while the detector probes. The detector must observe the
/// exact same suspicion/confirmation/refutation history on every engine
/// and shard count — and actually detect the crashes.
#[test]
fn swim_parity_under_mega_churn() {
    let mut spec = detector_spec(Architecture::FairGossip, 128, 42);
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 1.5,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.25,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    });
    let outcome = assert_parity(&spec, "mega-churn");
    assert!(
        outcome.total_swim_observations() > 0,
        "mega-churn must generate detector traffic"
    );
    let series = outcome.membership_series(SimDuration::from_millis(500));
    assert!(
        series.total_detections() > 0,
        "crashes under mega-churn must be confirmed"
    );
}

/// A scheduled partition (ids < 32 vs the rest) that heals mid-run. The
/// far side looks dead to each half — those suspicions are *false*
/// (nobody crashed) — and after the heal the refutation wave revives the
/// records. All of it bit-identical across engines and shard counts.
#[test]
fn swim_parity_through_partition_heal() {
    let mut spec = detector_spec(Architecture::FairGossip, 96, 7);
    spec = spec.with_faults(FaultSchedule {
        partition: Some(PartitionFault {
            at: SimTime::from_millis(1_500),
            heal: SimTime::from_millis(3_500),
            split: 32,
        }),
        oneway: None,
        delay: None,
    });
    let outcome = assert_parity(&spec, "partition-heal");
    let series = outcome.membership_series(SimDuration::from_millis(500));
    assert!(
        series.total_false_suspicions() > 0,
        "a partition must look like failure to the detector"
    );
    assert!(
        series.total_refutes() > 0,
        "the heal must trigger a refutation wave"
    );
    // The partition dents reliability at most transiently: the scenario
    // still delivers on both sides throughout.
    assert!(outcome.total_deliveries() > 0);
}

/// One-way link failure (messages from ids < 16 to the rest are dropped)
/// plus a delay spike, layered on churn: the full fault vocabulary in a
/// single schedule, still engine-invariant.
#[test]
fn fault_vocabulary_parity_with_detector() {
    let mut spec = detector_spec(Architecture::StaticGossip, 80, 11);
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 2.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.15,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    });
    spec = spec.with_faults(FaultSchedule {
        partition: None,
        oneway: Some(OnewayFault {
            at: SimTime::from_millis(1_200),
            until: SimTime::from_millis(2_200),
            split: 16,
        }),
        delay: Some(DelayFault {
            at: SimTime::from_millis(2_500),
            until: SimTime::from_millis(3_500),
            extra: SimDuration::from_millis(40),
        }),
    });
    assert_parity(&spec, "oneway+delay");
}

/// The hybrid architecture's broker→gossip handover fires under a flash
/// crowd, at the same instant on every engine and shard count, and the
/// run keeps delivering after the switch.
#[test]
fn hybrid_handover_parity_under_flash_crowd() {
    let mut spec = detector_spec(Architecture::Hybrid, 64, 3);
    spec.plan = PubPlan {
        rate_per_sec: 20.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: Some(FlashCrowd {
            at: SimTime::from_secs(2),
            topic_zipf_s: 3.0,
            rate_factor: 12.0,
        }),
    };
    let outcome = assert_parity(&spec, "hybrid flash crowd");
    let handover = outcome
        .handover_time()
        .expect("the flash crowd must push publish load past the spike threshold");
    assert!(
        handover >= SimTime::from_secs(2),
        "handover cannot precede the burst (got {handover:?})"
    );
    assert!(
        outcome.handovers.iter().all(|h| h.is_some()),
        "every node must eventually switch"
    );
}

/// A periodic mobility blackout (ids < 24 lose the core for 1.3s of
/// every 2.5s cycle) under the armed detector: each blackout looks like
/// mass failure — *false* suspicions, since nobody crashed — and each
/// reconnection triggers refutations. The trace is evaluated as a pure
/// function of (time, from, to), so the whole history is bit-identical
/// across engines and shard counts {1, 2, 4, 7}.
#[test]
fn swim_parity_under_mobility_blackouts() {
    let mut spec = detector_spec(Architecture::FairGossip, 72, 13);
    spec = spec.with_mobility(MobilityTrace {
        split: 24,
        period: Some(SimDuration::from_millis(2_500)),
        segments: vec![
            MobilitySegment {
                at: SimTime::ZERO,
                extra: SimDuration::ZERO,
                disconnected: false,
            },
            MobilitySegment {
                at: SimTime::from_millis(1_200),
                extra: SimDuration::ZERO,
                disconnected: true,
            },
        ],
    });
    let outcome = assert_parity(&spec, "mobility blackout");
    let series = outcome.membership_series(SimDuration::from_millis(500));
    assert!(
        series.total_false_suspicions() > 0,
        "a blackout must look like failure to the detector"
    );
    assert!(
        series.total_refutes() > 0,
        "each reconnection must trigger a refutation wave"
    );
}

/// The hybrid broker→gossip handover still fires — at the same instant
/// everywhere — when a mobility trace is degrading the world underneath
/// the flash crowd: an extra-latency segment while the load builds,
/// then a permanent disconnection of a fringe group after the switch.
#[test]
fn hybrid_handover_parity_under_mobility() {
    let mut spec = detector_spec(Architecture::Hybrid, 64, 9);
    spec.plan = PubPlan {
        rate_per_sec: 20.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: Some(FlashCrowd {
            at: SimTime::from_secs(2),
            topic_zipf_s: 3.0,
            rate_factor: 12.0,
        }),
    };
    spec = spec.with_mobility(MobilityTrace {
        split: 16,
        period: None,
        segments: vec![
            MobilitySegment {
                at: SimTime::from_millis(1_500),
                extra: SimDuration::from_millis(25),
                disconnected: false,
            },
            MobilitySegment {
                at: SimTime::from_millis(4_000),
                extra: SimDuration::ZERO,
                disconnected: true,
            },
        ],
    });
    let outcome = assert_parity(&spec, "hybrid under mobility");
    let handover = outcome
        .handover_time()
        .expect("the flash crowd must still push load past the spike threshold");
    assert!(
        handover >= SimTime::from_secs(2),
        "handover cannot precede the burst (got {handover:?})"
    );
    assert!(outcome.total_deliveries() > 0);
}

/// Detection *telemetry* is byte-identical too: the membership series
/// derived from the observation logs matches across engines at shards
/// {1, 4}, with the full telemetry pipeline running alongside.
#[test]
fn detection_telemetry_parity() {
    let mut spec = detector_spec(Architecture::FairGossip, 64, 5);
    spec.telemetry = Some(TelemetrySpec::default().with_window(SimDuration::from_millis(500)));
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 1.5,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.2,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    });
    let window = SimDuration::from_millis(500);
    let sequential = run_architecture(&spec, EngineKind::Sequential);
    let expected = sequential.membership_series(window);
    assert!(expected.total_detections() > 0, "dead detector");
    for shards in [1usize, 4] {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        assert_eq!(
            got.membership_series(window),
            expected,
            "membership series diverged at {shards} shards"
        );
        assert_eq!(
            got.telemetry, sequential.telemetry,
            "telemetry series diverged at {shards} shards"
        );
    }
}
