//! The curated scenario library and its documentation, kept honest:
//!
//! * every `scenarios/*.toml` parses strictly, materializes, and
//!   round-trips through the serializer;
//! * every library scenario is engine-agnostic (seq vs cluster at
//!   shards {1, 4} plus the file's own shard count, bit-identical) when
//!   downscaled to test size — CI runs the full-size gate via
//!   `fed-experiments parity @all`;
//! * the README's "Available ids" sentence matches the experiment
//!   registry, so the hand-written line can never go stale;
//! * every complete TOML example in `docs/SCENARIOS.md` parses with the
//!   shipped parser (fragments are marked `# fragment` and skipped).

use fed_experiments::scenario_run::{
    display_name, library, load_file, parity_gate, parity_shards_for,
};
use fed_workload::scenario_file::{parse_scenario, spec_from_toml, to_toml};
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn read_repo_file(rel: &str) -> String {
    let path = repo_root().join(rel);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

#[test]
fn library_holds_at_least_eight_scenarios() {
    let files = library().expect("library readable");
    assert!(
        files.len() >= 8,
        "scenario library must stay curated: only {} files",
        files.len()
    );
}

#[test]
fn every_library_file_parses_materializes_and_round_trips() {
    for path in library().expect("library readable") {
        let file = load_file(&path).unwrap_or_else(|e| panic!("{e}"));
        // Library files are self-describing.
        assert!(
            file.name.is_some() && file.summary.is_some(),
            "{}: library scenarios must set name and summary",
            path.display()
        );
        let name = display_name(&path, &file);
        assert_eq!(
            Some(name.as_str()),
            path.file_stem().and_then(|s| s.to_str()),
            "{}: [scenario] name must match the file stem",
            path.display()
        );
        // A parsing file is a runnable file.
        file.spec
            .materialize()
            .unwrap_or_else(|e| panic!("{}: does not materialize: {e:?}", path.display()));
        // And the spec survives a serializer round trip exactly.
        let toml = to_toml(&file.spec).expect("library specs are representable");
        let reparsed = spec_from_toml(&toml).expect("serialized spec parses");
        assert_eq!(
            reparsed,
            file.spec,
            "{}: round trip diverged",
            path.display()
        );
    }
}

/// Downscaled twin of `fed-experiments parity @all`: the same files, the
/// same gate, population clamped so `cargo test` stays fast. CI runs the
/// full-size sweep in the `scenario-library` job.
#[test]
fn every_library_scenario_is_engine_agnostic_at_test_size() {
    for path in library().expect("library readable") {
        let file = load_file(&path).unwrap_or_else(|e| panic!("{e}"));
        let name = display_name(&path, &file);
        let mut spec = file.spec;
        spec.n = spec.n.min(48);
        let report = parity_gate(&name, &spec, &parity_shards_for(&spec));
        assert!(report.identical, "{}:\n{}", path.display(), report.table);
    }
}

#[test]
fn readme_available_ids_line_matches_the_registry() {
    let readme = read_repo_file("README.md");
    let normalized: String = readme.split_whitespace().collect::<Vec<_>>().join(" ");
    let expected = format!(
        "Available ids: `{}`",
        fed_experiments::experiment_ids_line()
    );
    assert!(
        normalized.contains(&expected),
        "README.md 'Available ids' line is stale.\n\
         It must read (modulo line wrapping):\n  {expected}\n\
         — derived from fed_experiments::REGISTRY; update the README."
    );
}

#[test]
fn scenarios_doc_examples_match_the_shipped_parser() {
    let doc = read_repo_file("docs/SCENARIOS.md");
    let mut blocks: Vec<(usize, String)> = Vec::new();
    let mut current: Option<(usize, Vec<&str>)> = None;
    for (i, line) in doc.lines().enumerate() {
        match &mut current {
            None if line.trim() == "```toml" => current = Some((i + 1, Vec::new())),
            Some((start, body)) => {
                if line.trim() == "```" {
                    blocks.push((*start, body.join("\n")));
                    current = None;
                } else {
                    body.push(line);
                }
            }
            None => {}
        }
    }
    assert!(
        blocks.iter().any(|(_, b)| !b.contains("# fragment")),
        "docs/SCENARIOS.md must hold at least one complete example"
    );
    for (line, block) in blocks {
        if block.contains("# fragment") {
            continue;
        }
        parse_scenario(&block).unwrap_or_else(|e| {
            panic!("docs/SCENARIOS.md example at line {line} does not parse: {e}")
        });
    }
}
