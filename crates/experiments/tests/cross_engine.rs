//! Cross-engine determinism: the same 1000-node fair-gossip scenario run
//! through the harness on the sequential `fed_sim::Simulation`
//! ([`build_gossip_spec`]) and on `fed-cluster` with 1, 2 and 4 shards
//! ([`build_gossip_cluster`]) must produce identical delivery counts,
//! transport statistics and fairness indices.
//!
//! Both builders share one workload scheduler, so this asserts the
//! engines themselves: shard count is a performance knob, never a
//! semantics knob.

use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_experiments::harness::{build_gossip_cluster, build_gossip_spec, Node};
use fed_sim::{NodeId, SimDuration, SimTime, TransportStats};
use fed_util::fairness::jain_index;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::ScenarioSpec;

fn spec(n: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, 42);
    // Shorter publication phase: 1000 nodes x ~100 gossip rounds is plenty.
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(4),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
    };
    spec
}

fn config() -> GossipConfig {
    GossipConfig::fair(4, 16, SimDuration::from_millis(100))
}

/// Per-node observable outcome plus the engine-level event count.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    deliveries: Vec<usize>,
    duplicates: Vec<u64>,
    stats: Vec<TransportStats>,
    jain_bits: u64,
    events: u64,
}

fn fingerprint<'a, I>(nodes: I, stats: Vec<TransportStats>, events: u64) -> Fingerprint
where
    I: Iterator<Item = (NodeId, &'a Node)>,
{
    let mut deliveries = Vec::new();
    let mut duplicates = Vec::new();
    let mut contributions = Vec::new();
    let ratio_spec = RatioSpec::topic_based();
    for (_, node) in nodes {
        deliveries.push(node.deliveries().len());
        duplicates.push(node.duplicates());
        contributions.push(node.ledger().contribution(&ratio_spec));
    }
    Fingerprint {
        deliveries,
        duplicates,
        stats,
        // Bit pattern, not approximate equality: the runs must agree on
        // every floating-point operation.
        jain_bits: jain_index(&contributions).to_bits(),
        events,
    }
}

fn run_sequential(spec: &ScenarioSpec) -> Fingerprint {
    let mut run = build_gossip_spec(spec, config(), |_| Behavior::Honest);
    run.run();
    let stats = run.sim.transport_stats_all().to_vec();
    fingerprint(run.sim.nodes(), stats, run.sim.events_processed())
}

fn run_cluster(spec: &ScenarioSpec, shards: usize) -> Fingerprint {
    let spec = spec.clone().with_shards(shards);
    let mut run = build_gossip_cluster(&spec, config(), |_| Behavior::Honest);
    run.run();
    let stats = run.sim.transport_stats_all();
    fingerprint(run.sim.nodes(), stats, run.sim.events_processed())
}

#[test]
fn cross_engine_determinism_1k_nodes() {
    let spec = spec(1000);
    let expected = run_sequential(&spec);
    // Sanity: the scenario actually delivers events.
    assert!(
        expected.deliveries.iter().sum::<usize>() > 0,
        "dead scenario"
    );
    for shards in [1, 2, 4] {
        let got = run_cluster(&spec, shards);
        assert_eq!(
            got, expected,
            "cluster with {shards} shards diverged from the sequential engine"
        );
    }
}

#[test]
fn cross_engine_determinism_under_churn() {
    let mut spec = spec(200);
    spec.churn = Some(fed_workload::churn::ChurnPlan {
        mean_session_secs: 3.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.2,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_secs(1),
    });
    let expected = run_sequential(&spec);
    for shards in [2, 4] {
        let got = run_cluster(&spec, shards);
        assert_eq!(
            got, expected,
            "churny cluster with {shards} shards diverged from the sequential engine"
        );
    }
}
