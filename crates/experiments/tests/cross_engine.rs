//! Cross-engine determinism: the same scenario run through the harness on
//! the sequential `fed_sim::Simulation` and on `fed-cluster` must produce
//! identical delivery logs, fairness ledgers and transport statistics at
//! any shard count.
//!
//! Two layers of assertion:
//!
//! * the original 1000-node fair-gossip scenario through the dedicated
//!   gossip builders ([`build_gossip_spec`]/[`build_gossip_cluster`]);
//! * every baseline architecture (broker, Scribe, DKS, SplitStream — and
//!   DAM for good measure) through the architecture-generic
//!   [`run_architecture`], at shard counts {1, 2, 4, 7}, with and without
//!   churn.
//!
//! All runs share one workload scheduler, so this asserts the engines
//! themselves: shard count is a performance knob, never a semantics knob.

use fed_core::behavior::Behavior;
use fed_core::gossip::GossipConfig;
use fed_core::ledger::RatioSpec;
use fed_experiments::harness::{
    build_gossip_cluster, build_gossip_spec, run_architecture, EngineKind, Node,
};
use fed_sim::{NodeId, SimDuration, SimTime, TransportStats};
use fed_util::fairness::jain_index;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::PubPlan;
use fed_workload::scenario::{Architecture, Placement, ScenarioSpec};

fn spec(n: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::fair_gossip(n, 42);
    // Shorter publication phase: 1000 nodes x ~100 gossip rounds is plenty.
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(4),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

fn config() -> GossipConfig {
    GossipConfig::fair(4, 16, SimDuration::from_millis(100))
}

/// Per-node observable outcome plus the engine-level event count.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    deliveries: Vec<usize>,
    duplicates: Vec<u64>,
    stats: Vec<TransportStats>,
    jain_bits: u64,
    events: u64,
}

fn fingerprint<'a, I>(nodes: I, stats: Vec<TransportStats>, events: u64) -> Fingerprint
where
    I: Iterator<Item = (NodeId, &'a Node)>,
{
    let mut deliveries = Vec::new();
    let mut duplicates = Vec::new();
    let mut contributions = Vec::new();
    let ratio_spec = RatioSpec::topic_based();
    for (_, node) in nodes {
        deliveries.push(node.deliveries().len());
        duplicates.push(node.duplicates());
        contributions.push(node.ledger().contribution(&ratio_spec));
    }
    Fingerprint {
        deliveries,
        duplicates,
        stats,
        // Bit pattern, not approximate equality: the runs must agree on
        // every floating-point operation.
        jain_bits: jain_index(&contributions).to_bits(),
        events,
    }
}

fn run_sequential(spec: &ScenarioSpec) -> Fingerprint {
    let mut run = build_gossip_spec(spec, config(), |_| Behavior::Honest);
    run.run();
    let stats = run.sim.transport_stats_all().to_vec();
    fingerprint(run.sim.nodes(), stats, run.sim.events_processed())
}

fn run_cluster(spec: &ScenarioSpec, shards: usize) -> Fingerprint {
    let spec = spec.clone().with_shards(shards);
    let mut run = build_gossip_cluster(&spec, config(), |_| Behavior::Honest);
    run.run();
    let stats = run.sim.transport_stats_all();
    fingerprint(run.sim.nodes(), stats, run.sim.events_processed())
}

#[test]
fn cross_engine_determinism_1k_nodes() {
    let spec = spec(1000);
    let expected = run_sequential(&spec);
    // Sanity: the scenario actually delivers events.
    assert!(
        expected.deliveries.iter().sum::<usize>() > 0,
        "dead scenario"
    );
    for shards in [1, 2, 4] {
        let got = run_cluster(&spec, shards);
        assert_eq!(
            got, expected,
            "cluster with {shards} shards diverged from the sequential engine"
        );
    }
}

/// A baseline-architecture scenario small enough for debug-mode test
/// runs but busy enough to exercise routing, group floods and trees.
fn baseline_spec(arch: Architecture, n: usize) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, 42);
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(3),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec
}

/// Runs `spec` sequentially and on the cluster at shard counts
/// {1, 2, 4, 7} plus a scheduler-knob matrix covering every placement
/// policy and both window policies, asserting bit-identical delivery
/// logs, fairness-ledger totals, transport statistics and event counts
/// throughout: shard count, placement and window sizing are performance
/// knobs, never semantics knobs.
fn assert_arch_parity(spec: &ScenarioSpec) {
    let expected = run_architecture(spec, EngineKind::Sequential);
    assert!(
        expected.total_deliveries() > 0,
        "{}: dead scenario proves nothing",
        spec.arch
    );
    let check = |cluster_spec: ScenarioSpec, what: &str| {
        let got = run_architecture(&cluster_spec, EngineKind::Cluster);
        assert_eq!(
            got.deliveries, expected.deliveries,
            "{} {what}: delivery logs diverged",
            spec.arch
        );
        assert_eq!(
            got.ledgers, expected.ledgers,
            "{} {what}: fairness ledgers diverged",
            spec.arch
        );
        assert_eq!(
            got.stats, expected.stats,
            "{} {what}: transport stats diverged",
            spec.arch
        );
        assert_eq!(
            got.events, expected.events,
            "{} {what}: event counts diverged",
            spec.arch
        );
    };
    for shards in [1usize, 2, 4, 7] {
        check(
            spec.clone().with_shards(shards),
            &format!("with {shards} shards"),
        );
    }
    for (shards, placement, adaptive) in [
        (4, Placement::Block, true),
        (7, Placement::Balanced, true),
        (2, Placement::RoundRobin, false),
        (4, Placement::Balanced, false),
    ] {
        check(
            spec.clone()
                .with_shards(shards)
                .with_placement(placement)
                .with_adaptive_window(adaptive),
            &format!(
                "with {shards} shards, {placement} placement, {} windows",
                if adaptive { "adaptive" } else { "fixed" }
            ),
        );
    }
}

#[test]
fn broker_parity_across_shard_counts() {
    assert_arch_parity(&baseline_spec(Architecture::Broker, 192));
}

#[test]
fn scribe_parity_across_shard_counts() {
    assert_arch_parity(&baseline_spec(Architecture::Scribe, 192));
}

#[test]
fn dks_parity_across_shard_counts() {
    assert_arch_parity(&baseline_spec(Architecture::Dks, 192));
}

#[test]
fn splitstream_parity_across_shard_counts() {
    assert_arch_parity(&baseline_spec(Architecture::SplitStream, 192));
}

#[test]
fn dam_parity_across_shard_counts() {
    assert_arch_parity(&baseline_spec(Architecture::Dam, 128));
}

fn churn_plan() -> ChurnPlan {
    ChurnPlan {
        mean_session_secs: 2.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.25,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    }
}

/// Every baseline stays engine-agnostic under churn: crashes drop nodes
/// mid-dissemination and rejoins rebuild state from the per-node stream,
/// identically on both engines.
#[test]
fn baseline_parity_under_churn() {
    for arch in [
        Architecture::Broker,
        Architecture::Scribe,
        Architecture::Dks,
        Architecture::SplitStream,
    ] {
        let mut spec = baseline_spec(arch, 128);
        spec.churn = Some(churn_plan());
        assert_arch_parity(&spec);
    }
}

#[test]
fn cross_engine_determinism_under_churn() {
    let mut spec = spec(200);
    spec.churn = Some(fed_workload::churn::ChurnPlan {
        mean_session_secs: 3.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.2,
        duration: SimTime::from_secs(4),
        warmup: SimTime::from_secs(1),
    });
    let expected = run_sequential(&spec);
    for shards in [1, 2, 4, 7] {
        let got = run_cluster(&spec, shards);
        assert_eq!(
            got, expected,
            "churny cluster with {shards} shards diverged from the sequential engine"
        );
    }
}

/// A zero-latency network floors the lookahead at the 1 µs delivery
/// minimum — the narrowest conservative windows the scheduler can issue.
/// Under the pipelined exchange every absorption point sits 1 µs past
/// the window start, so this is the harshest test of the overlapped
/// path: parity must hold at shards {1, 2, 4, 7} under both window
/// policies.
#[test]
fn zero_lookahead_floor_parity_across_shard_counts() {
    use fed_sim::network::{LatencyModel, NetworkModel};
    let mut spec = spec(96);
    spec.net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
    spec.plan.duration = SimTime::from_secs(2);
    let expected = run_sequential(&spec);
    assert!(
        expected.deliveries.iter().sum::<usize>() > 0,
        "dead zero-latency scenario proves nothing"
    );
    for shards in [1, 2, 4, 7] {
        for adaptive in [true, false] {
            let cluster_spec = spec.clone().with_adaptive_window(adaptive);
            let got = run_cluster(&cluster_spec, shards);
            assert_eq!(
                got,
                expected,
                "zero-lookahead cluster with {shards} shards \
                 ({} windows) diverged from the sequential engine",
                if adaptive { "adaptive" } else { "fixed" }
            );
        }
    }
}

/// Zero lookahead *and* churn together: crashes and rejoins land inside
/// 1 µs-floored windows while inbound batches stream through the
/// pipelined mailboxes — the two stress axes of the overlapped exchange
/// at once.
#[test]
fn zero_lookahead_floor_parity_under_churn() {
    use fed_sim::network::{LatencyModel, NetworkModel};
    let mut spec = spec(96);
    spec.net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::ZERO));
    spec.plan.duration = SimTime::from_secs(2);
    spec.churn = Some(fed_workload::churn::ChurnPlan {
        mean_session_secs: 2.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.25,
        duration: SimTime::from_secs(2),
        warmup: SimTime::from_secs(1),
    });
    let expected = run_sequential(&spec);
    for shards in [1, 2, 4, 7] {
        let got = run_cluster(&spec, shards);
        assert_eq!(
            got, expected,
            "churny zero-lookahead cluster with {shards} shards diverged \
             from the sequential engine"
        );
    }
}
