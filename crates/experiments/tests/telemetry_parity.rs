//! Telemetry series parity: for the same spec, the sequential engine's
//! single collector and the sharded engine's merged per-shard collectors
//! must produce **byte-identical** [`TelemetrySeries`] at every shard
//! count — including under churn and through a flash-crowd burst — and
//! attaching telemetry must never perturb the virtual-world outcome.
//!
//! This is the observability twin of `cross_engine.rs`: that suite pins
//! the execution itself, this one pins what the probes see of it.

use fed_experiments::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_experiments::timeseries::timeseries_spec;
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::TelemetrySpec;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::{FlashCrowd, PubPlan};
use fed_workload::scenario::{Architecture, ScenarioSpec};

/// A small, busy scenario with telemetry at 250 ms windows.
fn spec(arch: Architecture, n: usize, churn: bool, flash: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, 42);
    spec.plan = PubPlan {
        rate_per_sec: 12.0,
        duration: SimTime::from_secs(3),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: flash.then_some(FlashCrowd {
            at: SimTime::from_millis(2_500),
            topic_zipf_s: 3.0,
            rate_factor: 3.0,
        }),
    };
    if churn {
        spec.churn = Some(ChurnPlan {
            mean_session_secs: 2.0,
            mean_downtime_secs: 1.0,
            churning_fraction: 0.25,
            duration: SimTime::from_secs(3),
            warmup: SimTime::from_secs(1),
        });
    }
    spec.telemetry = Some(TelemetrySpec::default().with_window(SimDuration::from_millis(250)));
    spec
}

/// Sanity guard: a parity assertion over a dead or idle series proves
/// nothing.
fn assert_series_is_live(outcome: &ArchOutcome, what: &str) {
    let series = outcome.telemetry.as_ref().expect("telemetry enabled");
    assert!(
        series.windows.iter().any(|w| w.msgs_sent > 0),
        "{what}: series never saw a send"
    );
    assert!(
        series.windows.iter().any(|w| w.latency_hist.count() > 0),
        "{what}: series never saw a delivery latency"
    );
}

fn assert_telemetry_parity(spec: &ScenarioSpec, shard_counts: &[usize]) {
    let expected = run_architecture(spec, EngineKind::Sequential);
    assert_series_is_live(&expected, &format!("{} sequential", spec.arch));
    for &shards in shard_counts {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        assert_eq!(
            got.telemetry, expected.telemetry,
            "{} with {shards} shards: telemetry series diverged",
            spec.arch
        );
        // Telemetry is passive: the virtual world itself must also match.
        assert_eq!(
            got.deliveries, expected.deliveries,
            "{} with {shards} shards: deliveries diverged under telemetry",
            spec.arch
        );
        assert_eq!(
            got.events, expected.events,
            "{} with {shards} shards: event counts diverged under telemetry",
            spec.arch
        );
    }
}

#[test]
fn fair_gossip_series_parity_across_shard_counts() {
    assert_telemetry_parity(
        &spec(Architecture::FairGossip, 96, false, false),
        &[1, 2, 4, 7],
    );
}

#[test]
fn fair_gossip_series_parity_under_churn_and_flash_crowd() {
    assert_telemetry_parity(
        &spec(Architecture::FairGossip, 96, true, true),
        &[1, 2, 4, 7],
    );
}

#[test]
fn splitstream_series_parity_under_churn_and_flash_crowd() {
    assert_telemetry_parity(
        &spec(Architecture::SplitStream, 96, true, true),
        &[1, 2, 4, 7],
    );
}

#[test]
fn broker_hotspot_series_parity() {
    // The broker concentrates everything on node 0 — the worst case for
    // per-node load accounting split across shards.
    assert_telemetry_parity(&spec(Architecture::Broker, 96, false, true), &[2, 7]);
}

/// Every architecture passes the gate at one representative shard count
/// with both stressors on.
#[test]
fn every_architecture_series_parity_at_three_shards() {
    for arch in Architecture::ALL {
        assert_telemetry_parity(&spec(arch, 64, true, true), &[3]);
    }
}

/// Telemetry attached vs detached: the observable outcome (deliveries,
/// ledgers, stats, events) is bit-identical — the probe is free of
/// side effects on either engine.
#[test]
fn telemetry_never_perturbs_the_run() {
    let with = spec(Architecture::FairGossip, 64, true, true);
    let mut without = with.clone();
    without.telemetry = None;
    for engine in [EngineKind::Sequential, EngineKind::Cluster] {
        let probed = run_architecture(&with.clone().with_shards(3), engine);
        let bare = run_architecture(&without.clone().with_shards(3), engine);
        assert_eq!(probed.deliveries, bare.deliveries);
        assert_eq!(probed.ledgers, bare.ledgers);
        assert_eq!(probed.stats, bare.stats);
        assert_eq!(probed.events, bare.events);
        assert!(probed.telemetry.is_some() && bare.telemetry.is_none());
    }
}

/// The timeseries experiment's own scenario holds the parity gate at the
/// shard counts the experiment does not sweep.
#[test]
fn experiment_scenario_series_parity() {
    let spec = timeseries_spec(Architecture::Dam, 64, 42);
    assert_telemetry_parity(&spec, &[2, 7]);
}
