//! Hop-trace parity: for the same traced spec, the sequential engine's
//! trace buffer and the sharded engine's merged per-shard buffers must
//! be **byte-identical** at every shard count — across architectures,
//! churn, scheduled faults and sampling rates — and attaching a tracer
//! must never perturb the virtual-world outcome.
//!
//! This is the tracing sibling of `profile_parity.rs` (work counters)
//! and `telemetry_parity.rs` (probe series): each suite pins one
//! instrument's view of the run. Hop records are emitted on the
//! sender-owning shard and merged in canonical order, so the merged
//! cluster buffer is not merely equivalent to the sequential one — it is
//! the same byte sequence.

use fed_experiments::harness::{run_architecture, ArchOutcome, EngineKind};
use fed_experiments::scenario_run::{outcomes_match, traces_match};
use fed_sim::network::{DelayFault, FaultSchedule, OnewayFault, PartitionFault};
use fed_sim::{HopKind, SimDuration, SimTime};
use fed_trace::TraceSpec;
use fed_workload::churn::ChurnPlan;
use fed_workload::pubs::{FlashCrowd, PubPlan};
use fed_workload::scenario::{Architecture, ScenarioSpec};
use std::collections::BTreeSet;

/// The acceptance shard sweep: one-shard cluster, powers of two, and a
/// prime that leaves shards unevenly populated.
const SHARDS: &[usize] = &[1, 2, 4, 7];

/// A small, busy traced scenario (full sampling unless overridden).
fn traced_spec(arch: Architecture, n: usize, seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::standard(arch, n, seed);
    spec.plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(3),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    spec.with_trace(TraceSpec::default())
}

/// Gates `spec` across [`SHARDS`]: every cluster run must match the
/// sequential baseline on every virtual-world observable *and* on the
/// merged hop trace, byte for byte. Returns the sequential outcome so
/// callers can make further assertions about what was traced.
fn assert_trace_parity(spec: &ScenarioSpec, what: &str) -> ArchOutcome {
    let baseline = run_architecture(spec, EngineKind::Sequential);
    let hops = baseline.trace.as_ref().expect("tracing enabled");
    assert!(!hops.is_empty(), "{what}: nothing was traced");
    for &shards in SHARDS {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        assert!(
            outcomes_match(&baseline, &got),
            "{what} at {shards} shards: virtual world diverged"
        );
        assert!(
            traces_match(&baseline, &got),
            "{what} at {shards} shards: merged hop trace is not byte-identical"
        );
    }
    baseline
}

/// The hop kinds `outcome`'s trace contains.
fn kinds_of(outcome: &ArchOutcome) -> BTreeSet<HopKind> {
    outcome
        .trace
        .as_ref()
        .expect("tracing enabled")
        .iter()
        .map(|h| h.kind)
        .collect()
}

/// Every architecture's hop trace merges byte-identically, and each
/// baseline tags its hops with its own distinguishable vocabulary.
#[test]
fn every_architecture_trace_parity_with_distinct_hop_kinds() {
    use HopKind::*;
    let expected_kinds: &[(Architecture, &[HopKind])] = &[
        (Architecture::FairGossip, &[GossipPush]),
        (Architecture::StaticGossip, &[GossipPush]),
        (Architecture::Broker, &[BrokerIngress, BrokerNotify]),
        (Architecture::Scribe, &[TreeToRoot, TreeEdge]),
        (Architecture::Dks, &[DhtRoute, GroupFlood]),
        (Architecture::Dam, &[GossipHandoff, GossipPush]),
        (Architecture::SplitStream, &[StripeToRoot, StripeEdge]),
        (Architecture::Hybrid, &[BrokerIngress, BrokerNotify]),
    ];
    for &(arch, kinds) in expected_kinds {
        let outcome = assert_trace_parity(&traced_spec(arch, 48, 42), arch.name());
        let seen = kinds_of(&outcome);
        for kind in kinds {
            assert!(
                seen.contains(kind),
                "{arch}: expected {kind:?} hops, saw {seen:?}"
            );
        }
    }
}

/// Churn plus a flash crowd: nodes leave and rejoin mid-dissemination
/// and the hot topic bursts, yet the merged trace stays byte-identical.
#[test]
fn trace_parity_under_churn_and_flash_crowd() {
    let mut spec = traced_spec(Architecture::FairGossip, 80, 7);
    spec.plan.flash = Some(FlashCrowd {
        at: SimTime::from_millis(2_500),
        topic_zipf_s: 3.0,
        rate_factor: 3.0,
    });
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 2.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.25,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    });
    assert_trace_parity(&spec, "churn + flash crowd");
}

/// The full fault vocabulary — partition, one-way failure, delay spike —
/// layered on churn: dropped hops are recorded with `deliver_time: None`
/// on every engine, identically.
#[test]
fn trace_parity_under_scheduled_faults() {
    let mut spec = traced_spec(Architecture::FairGossip, 64, 11);
    spec.churn = Some(ChurnPlan {
        mean_session_secs: 2.0,
        mean_downtime_secs: 1.0,
        churning_fraction: 0.15,
        duration: SimTime::from_secs(3),
        warmup: SimTime::from_secs(1),
    });
    spec = spec.with_faults(FaultSchedule {
        partition: Some(PartitionFault {
            at: SimTime::from_millis(1_200),
            heal: SimTime::from_millis(2_000),
            split: 32,
        }),
        oneway: Some(OnewayFault {
            at: SimTime::from_millis(2_200),
            until: SimTime::from_millis(2_800),
            split: 16,
        }),
        delay: Some(DelayFault {
            at: SimTime::from_millis(2_800),
            until: SimTime::from_millis(3_400),
            extra: SimDuration::from_millis(40),
        }),
    });
    let outcome = assert_trace_parity(&spec, "partition + oneway + delay");
    let hops = outcome.trace.as_ref().expect("tracing enabled");
    assert!(
        hops.iter().any(|h| h.deliver_time.is_none()),
        "a partitioned run must trace some dropped hops"
    );
    assert!(
        hops.iter().any(|h| h.deliver_time.is_some()),
        "the run must still deliver something"
    );
}

/// Sampling keeps parity: a fractional rate with a custom salt selects
/// the same whole-event subset on every engine and shard count, and the
/// sampled buffer is a strict subset of the full one.
#[test]
fn trace_parity_is_sampling_invariant() {
    let full = assert_trace_parity(&traced_spec(Architecture::FairGossip, 64, 5), "full rate");
    let mut spec = traced_spec(Architecture::FairGossip, 64, 5);
    spec.trace = Some(TraceSpec {
        sample_rate: 0.3,
        salt: 0xFED,
        export: None,
    });
    let sampled = assert_trace_parity(&spec, "sample_rate 0.3");
    let full_hops = full.trace.as_ref().expect("tracing enabled");
    let some_hops = sampled.trace.as_ref().expect("tracing enabled");
    assert!(
        some_hops.len() < full_hops.len(),
        "sampling at 0.3 must shrink the buffer"
    );
    let expected: Vec<_> = full_hops
        .iter()
        .filter(|h| fed_trace::sampled(h.event, 0xFED, 0.3))
        .copied()
        .collect();
    assert_eq!(
        some_hops, &expected,
        "the sampled buffer must be exactly the hash-filtered full buffer"
    );
}

/// The hybrid architecture under a mid-run partition: the broker→gossip
/// handover fires at the same instant on both engines at shards {1, 4},
/// and the hop trace shows the regime change — broker-tagged hops before
/// the handover, gossip-tagged hops after.
#[test]
fn hybrid_partition_handover_instant_parity() {
    let mut spec = traced_spec(Architecture::Hybrid, 64, 3);
    spec.plan = PubPlan {
        rate_per_sec: 20.0,
        duration: SimTime::from_secs(5),
        topic_zipf_s: 1.0,
        payload_bytes: 64,
        warmup: SimTime::from_secs(1),
        flash: Some(FlashCrowd {
            at: SimTime::from_secs(2),
            topic_zipf_s: 3.0,
            rate_factor: 12.0,
        }),
    };
    spec = spec.with_faults(FaultSchedule {
        partition: Some(PartitionFault {
            at: SimTime::from_millis(3_000),
            heal: SimTime::from_millis(4_000),
            split: 32,
        }),
        oneway: None,
        delay: None,
    });
    let baseline = run_architecture(&spec, EngineKind::Sequential);
    let handover = baseline
        .handover_time()
        .expect("the flash crowd must trip the broker's load spike threshold");
    for &shards in &[1usize, 4] {
        let got = run_architecture(&spec.clone().with_shards(shards), EngineKind::Cluster);
        assert_eq!(
            got.handover_time(),
            Some(handover),
            "handover instant diverged at {shards} shards"
        );
        assert_eq!(
            got.handovers, baseline.handovers,
            "per-node handover instants diverged at {shards} shards"
        );
        assert!(
            outcomes_match(&baseline, &got) && traces_match(&baseline, &got),
            "hybrid partition run diverged at {shards} shards"
        );
    }
    let kinds = kinds_of(&baseline);
    assert!(
        kinds.contains(&HopKind::BrokerNotify),
        "the broker regime must appear in the trace ({kinds:?})"
    );
    assert!(
        kinds.contains(&HopKind::GossipPush),
        "the gossip regime after handover must appear in the trace ({kinds:?})"
    );
}
