//! Central-broker publish/subscribe (paper §3: "some decentralized
//! solutions rely on a subset of servers (sometimes even one), or
//! brokers").
//!
//! One designated node is the broker; every other node is a client.
//! Clients send subscriptions and publications to the broker; the broker
//! matches and forwards. The architecture is maximally *unfair* in the
//! opposite direction from gossip: the broker contributes everything while
//! benefiting (in dissemination terms) not at all — and it is a throughput
//! and fault-tolerance bottleneck, which is why the paper's decentralized
//! premise exists.

use crate::common::DeliveryLog;
use fed_core::ledger::FairnessLedger;
use fed_pubsub::{Event, SubscriptionTable, TopicId};
use fed_sim::{Context, HopKind, NodeId, Protocol};
use std::collections::{BTreeSet, HashMap};

/// Wire messages of the broker system.
#[derive(Debug, Clone)]
pub enum BrokerMsg {
    /// Client → broker: publish this event.
    Publish(Event),
    /// Client → broker: subscribe me to a topic.
    Subscribe(TopicId),
    /// Client → broker: remove my subscription to a topic.
    Unsubscribe(TopicId),
    /// Broker → client: an event matching the client's subscription.
    Notify(Event),
}

/// Commands for the experiment driver.
#[derive(Debug, Clone)]
pub enum BrokerCmd {
    /// Publish an event (client-side entry point).
    Publish(Event),
    /// Subscribe to a topic.
    SubscribeTopic(TopicId),
    /// Unsubscribe from a topic.
    UnsubscribeTopic(TopicId),
}

/// A node in the broker architecture: the broker itself or a client.
#[derive(Debug)]
pub struct BrokerNode {
    id: NodeId,
    broker: NodeId,
    /// Broker-side subscription registry: topic → subscribers.
    registry: HashMap<TopicId, BTreeSet<NodeId>>,
    /// Client-side view of its own subscriptions.
    subs: SubscriptionTable,
    ledger: FairnessLedger,
    log: DeliveryLog,
}

impl BrokerNode {
    /// Creates a node; `broker` designates the broker for the whole system.
    pub fn new(id: NodeId, broker: NodeId) -> Self {
        BrokerNode {
            id,
            broker,
            registry: HashMap::new(),
            subs: SubscriptionTable::new(),
            ledger: FairnessLedger::new(),
            log: DeliveryLog::new(),
        }
    }

    /// Whether this node is the broker.
    pub fn is_broker(&self) -> bool {
        self.id == self.broker
    }

    /// Fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Delivery log.
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.log
    }

    /// Broker-side subscriber count for a topic (0 on clients).
    pub fn subscriber_count(&self, topic: TopicId) -> usize {
        self.registry.get(&topic).map(BTreeSet::len).unwrap_or(0)
    }

    fn broker_dispatch(&mut self, ctx: &mut Context<'_, BrokerMsg>, event: Event) {
        let subscribers = self
            .registry
            .get(&event.topic())
            .cloned()
            .unwrap_or_default();
        let size = event.size_bytes();
        for subscriber in subscribers {
            if subscriber == self.id {
                // broker may itself subscribe
                if self.subs.matches(&event) && self.log.deliver(&event, ctx.now()) {
                    self.ledger.record_delivery();
                }
                continue;
            }
            ctx.send(subscriber, BrokerMsg::Notify(event.clone()));
            self.ledger.record_forward(size);
        }
    }
}

impl Protocol for BrokerNode {
    type Msg = BrokerMsg;
    type Cmd = BrokerCmd;

    fn on_init(&mut self, _ctx: &mut Context<'_, BrokerMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, BrokerMsg>, from: NodeId, msg: BrokerMsg) {
        match msg {
            BrokerMsg::Publish(event) => {
                if self.is_broker() {
                    self.broker_dispatch(ctx, event);
                }
            }
            BrokerMsg::Subscribe(topic) => {
                if self.is_broker() {
                    self.registry.entry(topic).or_default().insert(from);
                    self.ledger.record_maintenance();
                }
            }
            BrokerMsg::Unsubscribe(topic) => {
                if self.is_broker() {
                    if let Some(set) = self.registry.get_mut(&topic) {
                        set.remove(&from);
                    }
                    self.ledger.record_maintenance();
                }
            }
            BrokerMsg::Notify(event) => {
                if self.subs.matches(&event) && self.log.deliver(&event, ctx.now()) {
                    self.ledger.record_delivery();
                }
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, BrokerMsg>, _token: u64) {}

    fn on_command(&mut self, ctx: &mut Context<'_, BrokerMsg>, cmd: BrokerCmd) {
        match cmd {
            BrokerCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                if self.is_broker() {
                    self.broker_dispatch(ctx, event);
                } else {
                    ctx.send(self.broker, BrokerMsg::Publish(event));
                }
            }
            BrokerCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
                if self.is_broker() {
                    let id = self.id;
                    self.registry.entry(topic).or_default().insert(id);
                } else {
                    ctx.send(self.broker, BrokerMsg::Subscribe(topic));
                }
            }
            BrokerCmd::UnsubscribeTopic(topic) => {
                let ids: Vec<_> = self
                    .subs
                    .iter()
                    .filter(|(_, s)| matches!(s, fed_pubsub::Subscription::Topic(t) if *t == topic))
                    .map(|(id, _)| id)
                    .collect();
                for id in ids {
                    let _ = self.subs.unsubscribe(id);
                }
                self.ledger.set_active_filters(self.subs.len() as u32);
                if !self.is_broker() {
                    ctx.send(self.broker, BrokerMsg::Unsubscribe(topic));
                }
            }
        }
    }

    fn message_size(msg: &BrokerMsg) -> usize {
        match msg {
            BrokerMsg::Publish(e) | BrokerMsg::Notify(e) => 8 + e.size_bytes(),
            BrokerMsg::Subscribe(_) | BrokerMsg::Unsubscribe(_) => 12,
        }
    }

    fn trace_payload(msg: &BrokerMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        // Subscription management is control plane.
        let (e, kind) = match msg {
            BrokerMsg::Publish(e) => (e, HopKind::BrokerIngress),
            BrokerMsg::Notify(e) => (e, HopKind::BrokerNotify),
            BrokerMsg::Subscribe(_) | BrokerMsg::Unsubscribe(_) => return,
        };
        emit(
            e.id().as_u64(),
            e.topic().as_u32(),
            e.size_bytes() as u32,
            kind,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_pubsub::EventId;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimDuration, SimTime, Simulation};

    fn sim(n: usize) -> Simulation<BrokerNode> {
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
        Simulation::new(n, net, 3, |id, _| BrokerNode::new(id, NodeId::new(0)))
    }

    #[test]
    fn publish_reaches_subscribers_only() {
        let mut s = sim(8);
        let topic = TopicId::new(1);
        for i in [2u32, 4, 6] {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                BrokerCmd::SubscribeTopic(topic),
            );
        }
        let e = Event::bare(EventId::new(3, 1), topic);
        s.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(3),
            BrokerCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(2));
        for (id, node) in s.nodes() {
            let should = matches!(id.as_u32(), 2 | 4 | 6);
            assert_eq!(node.deliveries().contains(e.id()), should, "{id}");
        }
    }

    #[test]
    fn broker_does_all_forwarding_work() {
        let mut s = sim(16);
        let topic = TopicId::new(0);
        for i in 1..16u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                BrokerCmd::SubscribeTopic(topic),
            );
        }
        for k in 0..10u32 {
            s.schedule_command(
                SimTime::from_millis(100 + k as u64),
                NodeId::new(1 + (k % 15)),
                BrokerCmd::Publish(Event::bare(EventId::new(1 + (k % 15), k), topic)),
            );
        }
        s.run_until(SimTime::from_secs(2));
        let broker_fwd = s
            .node(NodeId::new(0))
            .unwrap()
            .ledger()
            .totals()
            .forwarded_msgs;
        assert_eq!(broker_fwd, 10 * 15, "broker forwards every notify");
        for (id, node) in s.nodes() {
            if id.index() != 0 {
                assert_eq!(node.ledger().totals().forwarded_msgs, 0, "{id} client");
            }
        }
    }

    #[test]
    fn unsubscribe_stops_notifications() {
        let mut s = sim(4);
        let topic = TopicId::new(0);
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(2),
            BrokerCmd::SubscribeTopic(topic),
        );
        s.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(2),
            BrokerCmd::UnsubscribeTopic(topic),
        );
        s.schedule_command(
            SimTime::from_millis(500),
            NodeId::new(1),
            BrokerCmd::Publish(Event::bare(EventId::new(1, 1), topic)),
        );
        s.run_until(SimTime::from_secs(2));
        assert!(s.node(NodeId::new(2)).unwrap().deliveries().is_empty());
    }

    #[test]
    fn broker_as_subscriber_delivers_locally() {
        let mut s = sim(3);
        let topic = TopicId::new(0);
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(0),
            BrokerCmd::SubscribeTopic(topic),
        );
        let e = Event::bare(EventId::new(1, 1), topic);
        s.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(1),
            BrokerCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(1));
        assert!(s
            .node(NodeId::new(0))
            .unwrap()
            .deliveries()
            .contains(e.id()));
    }

    #[test]
    fn broker_crash_kills_dissemination() {
        let mut s = sim(6);
        let topic = TopicId::new(0);
        for i in 1..6u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                BrokerCmd::SubscribeTopic(topic),
            );
        }
        s.schedule_crash(SimTime::from_millis(50), NodeId::new(0));
        s.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(1),
            BrokerCmd::Publish(Event::bare(EventId::new(1, 1), topic)),
        );
        s.run_until(SimTime::from_secs(2));
        let total: usize = s.nodes().map(|(_, n)| n.deliveries().len()).sum();
        assert_eq!(total, 0, "single point of failure");
    }
}
