//! Shared helpers for the baseline dissemination systems.

use fed_pubsub::{Event, EventId};
use fed_sim::SimTime;
use std::collections::HashMap;

/// Exactly-once delivery log shared by all baseline nodes.
///
/// Baselines must obey the same delivery contract as the core protocol:
/// deliver an event at most once, record when, and never deliver an
/// uninteresting event (the caller checks interest before calling
/// [`DeliveryLog::deliver`]).
#[derive(Debug, Clone, Default)]
pub struct DeliveryLog {
    delivered: HashMap<EventId, SimTime>,
}

impl DeliveryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        DeliveryLog::default()
    }

    /// Records delivery of `event` at `now` unless already delivered.
    /// Returns `true` when this call performed the delivery.
    pub fn deliver(&mut self, event: &Event, now: SimTime) -> bool {
        match self.delivered.entry(event.id()) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(now);
                true
            }
        }
    }

    /// Whether `id` was delivered.
    pub fn contains(&self, id: EventId) -> bool {
        self.delivered.contains_key(&id)
    }

    /// Delivery time of `id`, if delivered.
    pub fn time_of(&self, id: EventId) -> Option<SimTime> {
        self.delivered.get(&id).copied()
    }

    /// Number of deliveries.
    pub fn len(&self) -> usize {
        self.delivered.len()
    }

    /// `true` when nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.delivered.is_empty()
    }

    /// Iterates `(event id, delivery time)`.
    pub fn iter(&self) -> impl Iterator<Item = (EventId, SimTime)> + '_ {
        self.delivered.iter().map(|(&id, &t)| (id, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_pubsub::TopicId;

    #[test]
    fn delivers_exactly_once() {
        let mut log = DeliveryLog::new();
        let e = Event::bare(EventId::new(1, 1), TopicId::new(0));
        assert!(log.deliver(&e, SimTime::from_millis(5)));
        assert!(
            !log.deliver(&e, SimTime::from_millis(9)),
            "second is a dupe"
        );
        assert_eq!(log.time_of(e.id()), Some(SimTime::from_millis(5)));
        assert!(log.contains(e.id()));
        assert_eq!(log.len(), 1);
        assert!(!log.is_empty());
        assert_eq!(log.iter().count(), 1);
    }

    #[test]
    fn empty_log() {
        let log = DeliveryLog::new();
        assert!(log.is_empty());
        assert!(!log.contains(EventId::new(0, 0)));
        assert_eq!(log.time_of(EventId::new(0, 0)), None);
    }
}
