//! Scribe-like application-level multicast over the Pastry substrate
//! (paper §4.1).
//!
//! Subscription: a `Join` is routed hop-by-hop toward the topic's
//! rendezvous (the DHT root of the topic key); every hop on the path
//! becomes a tree node, remembering the previous hop as a child. Publish:
//! the event is routed to the rendezvous and then multicast down the tree.
//!
//! The fairness defect the paper calls out is structural and reproduced
//! here exactly: *interior* tree nodes and *route relays* forward events
//! for topics they never subscribed to ("inner nodes of a multicast tree
//! may well have no interest at all in the given topic they are involved
//! in"), and nodes close to popular rendezvous do disproportionate work.

use crate::common::DeliveryLog;
use fed_core::ledger::FairnessLedger;
use fed_dht::{DhtId, DhtNetwork};
use fed_pubsub::{Event, SubscriptionTable, TopicId};
use fed_sim::{Context, HopKind, NodeId, Protocol};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

/// Wire messages.
#[derive(Debug, Clone)]
pub enum ScribeMsg {
    /// Tree join travelling toward the rendezvous.
    Join {
        /// Topic being joined.
        topic: TopicId,
    },
    /// A publication travelling toward the rendezvous.
    ToRoot {
        /// The event.
        event: Event,
    },
    /// Dissemination down the tree.
    Multicast {
        /// The event.
        event: Event,
    },
}

/// Driver commands.
#[derive(Debug, Clone)]
pub enum ScribeCmd {
    /// Publish an event.
    Publish(Event),
    /// Subscribe to a topic (joins the multicast tree).
    SubscribeTopic(TopicId),
}

/// A Scribe node.
#[derive(Debug)]
pub struct ScribeNode {
    id: NodeId,
    dht: Arc<DhtNetwork>,
    /// Per-topic children in the multicast tree.
    children: HashMap<TopicId, BTreeSet<NodeId>>,
    /// Topics for which this node already joined (forwarder state).
    in_tree: BTreeSet<TopicId>,
    subs: SubscriptionTable,
    ledger: FairnessLedger,
    log: DeliveryLog,
}

impl ScribeNode {
    /// Creates a node over a shared DHT substrate.
    pub fn new(id: NodeId, dht: Arc<DhtNetwork>) -> Self {
        ScribeNode {
            id,
            dht,
            children: HashMap::new(),
            in_tree: BTreeSet::new(),
            subs: SubscriptionTable::new(),
            ledger: FairnessLedger::new(),
            log: DeliveryLog::new(),
        }
    }

    /// Fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Delivery log.
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.log
    }

    /// Children of this node in `topic`'s tree.
    pub fn children_of(&self, topic: TopicId) -> usize {
        self.children.get(&topic).map(BTreeSet::len).unwrap_or(0)
    }

    /// Whether the node is part of `topic`'s tree (forwarder), regardless
    /// of interest.
    pub fn is_forwarder(&self, topic: TopicId) -> bool {
        self.in_tree.contains(&topic) || self.children.contains_key(&topic)
    }

    /// Whether the node actually subscribed to `topic`.
    pub fn is_subscriber(&self, topic: TopicId) -> bool {
        self.subs.topics().contains(&topic)
    }

    fn key_of(topic: TopicId) -> DhtId {
        DhtId::of_topic(topic.index())
    }

    fn next_hop(&self, topic: TopicId) -> Option<NodeId> {
        let state = self
            .dht
            .state_of(self.id.index())
            .expect("node is part of the DHT");
        state
            .next_hop(Self::key_of(topic))
            .map(|n| NodeId::new(n.index as u32))
    }

    fn handle_join(&mut self, ctx: &mut Context<'_, ScribeMsg>, topic: TopicId, child: NodeId) {
        self.children.entry(topic).or_default().insert(child);
        // Already on the tree (or root): no further propagation.
        if self.in_tree.contains(&topic) {
            return;
        }
        self.in_tree.insert(topic);
        if let Some(next) = self.next_hop(topic) {
            ctx.send(next, ScribeMsg::Join { topic });
            self.ledger.record_maintenance();
        }
        // If next_hop is None we are the rendezvous: tree rooted here.
    }

    fn multicast_down(&mut self, ctx: &mut Context<'_, ScribeMsg>, event: &Event) {
        let kids = self
            .children
            .get(&event.topic())
            .cloned()
            .unwrap_or_default();
        let size = event.size_bytes();
        for child in kids {
            ctx.send(
                child,
                ScribeMsg::Multicast {
                    event: event.clone(),
                },
            );
            self.ledger.record_forward(size);
        }
    }

    fn deliver_if_interested(&mut self, event: &Event, now: fed_sim::SimTime) {
        if self.subs.matches(event) && self.log.deliver(event, now) {
            self.ledger.record_delivery();
        }
    }
}

impl Protocol for ScribeNode {
    type Msg = ScribeMsg;
    type Cmd = ScribeCmd;

    fn on_init(&mut self, _ctx: &mut Context<'_, ScribeMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, ScribeMsg>, from: NodeId, msg: ScribeMsg) {
        match msg {
            ScribeMsg::Join { topic } => self.handle_join(ctx, topic, from),
            ScribeMsg::ToRoot { event } => match self.next_hop(event.topic()) {
                Some(next) => {
                    // Route relay work: forwarding a publication for a topic
                    // this node may care nothing about.
                    self.ledger.record_forward(event.size_bytes());
                    ctx.send(next, ScribeMsg::ToRoot { event });
                }
                None => {
                    // We are the rendezvous.
                    let now = ctx.now();
                    self.deliver_if_interested(&event, now);
                    self.multicast_down(ctx, &event);
                }
            },
            ScribeMsg::Multicast { event } => {
                let now = ctx.now();
                self.deliver_if_interested(&event, now);
                self.multicast_down(ctx, &event);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, ScribeMsg>, _token: u64) {}

    fn on_command(&mut self, ctx: &mut Context<'_, ScribeMsg>, cmd: ScribeCmd) {
        match cmd {
            ScribeCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                match self.next_hop(event.topic()) {
                    Some(next) => ctx.send(next, ScribeMsg::ToRoot { event }),
                    None => {
                        // Publisher happens to be the rendezvous.
                        let now = ctx.now();
                        self.deliver_if_interested(&event, now);
                        self.multicast_down(ctx, &event);
                    }
                }
            }
            ScribeCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
                if !self.in_tree.contains(&topic) {
                    self.in_tree.insert(topic);
                    if let Some(next) = self.next_hop(topic) {
                        ctx.send(next, ScribeMsg::Join { topic });
                        self.ledger.record_maintenance();
                    }
                }
            }
        }
    }

    fn message_size(msg: &ScribeMsg) -> usize {
        match msg {
            ScribeMsg::Join { .. } => 12,
            ScribeMsg::ToRoot { event } | ScribeMsg::Multicast { event } => 8 + event.size_bytes(),
        }
    }

    fn trace_payload(msg: &ScribeMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        // Tree joins are control plane.
        let (e, kind) = match msg {
            ScribeMsg::ToRoot { event } => (event, HopKind::TreeToRoot),
            ScribeMsg::Multicast { event } => (event, HopKind::TreeEdge),
            ScribeMsg::Join { .. } => return,
        };
        emit(
            e.id().as_u64(),
            e.topic().as_u32(),
            e.size_bytes() as u32,
            kind,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_pubsub::EventId;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimDuration, SimTime, Simulation};

    fn sim(n: usize) -> Simulation<ScribeNode> {
        let dht = Arc::new(DhtNetwork::build(n));
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)));
        Simulation::new(n, net, 17, move |id, _| {
            ScribeNode::new(id, Arc::clone(&dht))
        })
    }

    #[test]
    fn subscribers_receive_publications() {
        let n = 64;
        let mut s = sim(n);
        let topic = TopicId::new(3);
        let subscribers: Vec<u32> = vec![5, 17, 23, 42, 61];
        for &i in &subscribers {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                ScribeCmd::SubscribeTopic(topic),
            );
        }
        let e = Event::bare(EventId::new(7, 1), topic);
        s.schedule_command(
            SimTime::from_millis(500),
            NodeId::new(7),
            ScribeCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(5));
        for &i in &subscribers {
            assert!(
                s.node(NodeId::new(i))
                    .unwrap()
                    .deliveries()
                    .contains(e.id()),
                "subscriber {i} missed the event"
            );
        }
        // Non-subscribers never deliver.
        for (id, node) in s.nodes() {
            if !subscribers.contains(&id.as_u32()) {
                assert!(node.deliveries().is_empty(), "{id} spurious delivery");
            }
        }
    }

    #[test]
    fn interior_nodes_forward_without_interest() {
        let n = 128;
        let mut s = sim(n);
        let topic = TopicId::new(1);
        let subscribers: Vec<u32> = (0..20).map(|i| i * 6 + 1).collect();
        for &i in &subscribers {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                ScribeCmd::SubscribeTopic(topic),
            );
        }
        for k in 0..20u32 {
            s.schedule_command(
                SimTime::from_millis(500 + 50 * k as u64),
                NodeId::new(3),
                ScribeCmd::Publish(Event::bare(EventId::new(3, k), topic)),
            );
        }
        s.run_until(SimTime::from_secs(10));
        // The paper's claim: some node forwards (contributes) while having
        // no subscription (no benefit).
        let freeloaded: Vec<NodeId> = s
            .nodes()
            .filter(|(id, node)| {
                !subscribers.contains(&id.as_u32()) && node.ledger().totals().forwarded_msgs > 0
            })
            .map(|(id, _)| id)
            .collect();
        assert!(
            !freeloaded.is_empty(),
            "structured trees must conscript uninterested interior nodes"
        );
    }

    #[test]
    fn rendezvous_is_loaded_for_popular_topics() {
        let n = 64;
        let mut s = sim(n);
        let topic = TopicId::new(9);
        for i in 0..n as u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                ScribeCmd::SubscribeTopic(topic),
            );
        }
        for k in 0..10u32 {
            s.schedule_command(
                SimTime::from_millis(500 + 100 * k as u64),
                NodeId::new(k % n as u32),
                ScribeCmd::Publish(Event::bare(EventId::new(k % n as u32, k), topic)),
            );
        }
        s.run_until(SimTime::from_secs(10));
        let dht = DhtNetwork::build(n);
        let root = dht.root_of(DhtId::of_topic(topic.index()));
        let root_fwd = s
            .node(NodeId::new(root.index as u32))
            .unwrap()
            .ledger()
            .totals()
            .forwarded_msgs;
        assert!(root_fwd > 0, "rendezvous forwards the multicast");
        // all subscribers delivered every event
        for (_, node) in s.nodes() {
            assert_eq!(node.deliveries().len(), 10);
        }
    }

    #[test]
    fn publisher_at_rendezvous_works() {
        let n = 32;
        let dht = DhtNetwork::build(n);
        let topic = TopicId::new(2);
        let root = dht.root_of(DhtId::of_topic(topic.index()));
        let mut s = sim(n);
        let root_id = NodeId::new(root.index as u32);
        s.schedule_command(SimTime::ZERO, root_id, ScribeCmd::SubscribeTopic(topic));
        let e = Event::bare(EventId::new(root.index as u32, 1), topic);
        s.schedule_command(
            SimTime::from_millis(100),
            root_id,
            ScribeCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(2));
        assert!(s.node(root_id).unwrap().deliveries().contains(e.id()));
    }

    #[test]
    fn duplicate_subscribe_is_stable() {
        let mut s = sim(16);
        let topic = TopicId::new(0);
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(5),
            ScribeCmd::SubscribeTopic(topic),
        );
        s.schedule_command(
            SimTime::from_millis(200),
            NodeId::new(5),
            ScribeCmd::SubscribeTopic(topic),
        );
        let e = Event::bare(EventId::new(1, 1), topic);
        s.schedule_command(
            SimTime::from_millis(600),
            NodeId::new(1),
            ScribeCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(3));
        let node = s.node(NodeId::new(5)).unwrap();
        assert_eq!(node.deliveries().len(), 1);
    }
}
