//! Data-aware multicast (paper §4.2, the paper's own reference \[3\]):
//! per-topic gossip groups arranged along a topic hierarchy.
//!
//! Events of topic `t` are gossiped only inside `t`'s **group** — the nodes
//! enrolled for `t`. In the ideal case the group is exactly the subscriber
//! set, which "yields fairness with respect to the dissemination since
//! processes contribute only for messages they deliver". The catch the
//! paper highlights: to keep a topic *hierarchy* navigable, "some processes
//! need to subscribe to a supertopic, consequently forced to be interested
//! in all topics" — these bridge nodes forward subtopic traffic they never
//! asked for, behaving like mini-brokers. Group assignment is an input
//! here, so experiments can build both the ideal and the bridged variant
//! and measure the difference.

use crate::common::DeliveryLog;
use fed_core::ledger::FairnessLedger;
use fed_pubsub::{Event, EventId, SubscriptionTable, TopicId, TopicSpace};
use fed_sim::{Context, HopKind, NodeId, Protocol, SimDuration};
use fed_util::rng::Rng64;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;

/// Static group table: which nodes gossip for which topic.
pub type GroupTable = HashMap<TopicId, Vec<NodeId>>;

/// Timer token for gossip rounds.
const ROUND_TIMER: u64 = 1;

/// Wire messages.
#[derive(Debug, Clone)]
pub enum DamMsg {
    /// Intra-group gossip batch for one topic.
    Gossip {
        /// Topic the batch belongs to.
        topic: TopicId,
        /// Events (all on `topic`).
        events: Vec<Event>,
    },
    /// A publisher outside the group hands an event to a member.
    Handoff {
        /// The event.
        event: Event,
    },
}

/// Driver commands.
#[derive(Debug, Clone)]
pub enum DamCmd {
    /// Publish an event.
    Publish(Event),
    /// Subscribe to a topic (delivery-side only; group enrolment is the
    /// static [`GroupTable`]).
    SubscribeTopic(TopicId),
}

/// Configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DamConfig {
    /// Gossip round period.
    pub period: SimDuration,
    /// Partners per round per topic.
    pub fanout: usize,
    /// Rounds an event stays forwardable.
    pub ttl_rounds: u32,
}

impl Default for DamConfig {
    fn default() -> Self {
        DamConfig {
            period: SimDuration::from_millis(100),
            fanout: 4,
            ttl_rounds: 8,
        }
    }
}

/// A data-aware multicast node.
#[derive(Debug)]
pub struct DamNode {
    id: NodeId,
    config: DamConfig,
    groups: Arc<GroupTable>,
    space: Arc<TopicSpace>,
    subs: SubscriptionTable,
    /// Per-topic buffered events with TTL (ordered so round processing is
    /// deterministic — HashMap iteration order would leak into the RNG
    /// consumption sequence and break replay).
    buffer: BTreeMap<TopicId, Vec<(Event, u32)>>,
    seen: HashSet<EventId>,
    ledger: FairnessLedger,
    log: DeliveryLog,
}

impl DamNode {
    /// Creates a node over shared group and topic-space tables.
    pub fn new(
        id: NodeId,
        config: DamConfig,
        groups: Arc<GroupTable>,
        space: Arc<TopicSpace>,
    ) -> Self {
        DamNode {
            id,
            config,
            groups,
            space,
            subs: SubscriptionTable::new(),
            buffer: BTreeMap::new(),
            seen: HashSet::new(),
            ledger: FairnessLedger::new(),
            log: DeliveryLog::new(),
        }
    }

    /// Fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Delivery log.
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.log
    }

    /// Whether this node is enrolled in `topic`'s gossip group.
    pub fn is_group_member(&self, topic: TopicId) -> bool {
        self.groups
            .get(&topic)
            .map(|g| g.contains(&self.id))
            .unwrap_or(false)
    }

    fn group_peers(&self, topic: TopicId) -> Vec<NodeId> {
        self.groups
            .get(&topic)
            .map(|g| g.iter().copied().filter(|&p| p != self.id).collect())
            .unwrap_or_default()
    }

    fn accept(&mut self, ctx: &mut Context<'_, DamMsg>, event: Event) {
        if !self.seen.insert(event.id()) {
            return;
        }
        if self.subs.matches_in(&event, &self.space) {
            let now = ctx.now();
            if self.log.deliver(&event, now) {
                self.ledger.record_delivery();
            }
        }
        // Only group members keep forwarding.
        if self.is_group_member(event.topic()) {
            self.buffer
                .entry(event.topic())
                .or_default()
                .push((event, self.config.ttl_rounds));
        }
    }
}

impl Protocol for DamNode {
    type Msg = DamMsg;
    type Cmd = DamCmd;

    fn on_init(&mut self, ctx: &mut Context<'_, DamMsg>) {
        let jitter = ctx.rng().range_u64(self.config.period.as_micros().max(1));
        ctx.set_timer(SimDuration::from_micros(jitter), ROUND_TIMER);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, DamMsg>, _from: NodeId, msg: DamMsg) {
        match msg {
            DamMsg::Gossip { events, .. } => {
                for event in events {
                    self.accept(ctx, event);
                }
            }
            DamMsg::Handoff { event } => self.accept(ctx, event),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, DamMsg>, token: u64) {
        debug_assert_eq!(token, ROUND_TIMER);
        let topics: Vec<TopicId> = self.buffer.keys().copied().collect();
        for topic in topics {
            let batch: Vec<Event> = self
                .buffer
                .get(&topic)
                .map(|v| v.iter().map(|(e, _)| e.clone()).collect())
                .unwrap_or_default();
            if batch.is_empty() {
                continue;
            }
            let peers = self.group_peers(topic);
            if peers.is_empty() {
                continue;
            }
            let k = self.config.fanout.min(peers.len());
            let picked = ctx.rng().sample_indices(peers.len(), k);
            let size = 12 + batch.iter().map(Event::size_bytes).sum::<usize>();
            for i in picked {
                ctx.send(
                    peers[i],
                    DamMsg::Gossip {
                        topic,
                        events: batch.clone(),
                    },
                );
                self.ledger.record_forward(size);
            }
        }
        // Age buffers.
        for entries in self.buffer.values_mut() {
            for (_, ttl) in entries.iter_mut() {
                *ttl = ttl.saturating_sub(1);
            }
            entries.retain(|(_, ttl)| *ttl > 0);
        }
        self.buffer.retain(|_, v| !v.is_empty());
        ctx.set_timer(self.config.period, ROUND_TIMER);
    }

    fn on_command(&mut self, ctx: &mut Context<'_, DamMsg>, cmd: DamCmd) {
        match cmd {
            DamCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                if self.is_group_member(event.topic()) {
                    self.accept(ctx, event);
                } else {
                    // Bridge into the group through one member.
                    let peers = self.group_peers(event.topic());
                    if let Some(&member) = ctx.rng().choose(&peers) {
                        ctx.send(member, DamMsg::Handoff { event });
                    }
                }
            }
            DamCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
            }
        }
    }

    fn message_size(msg: &DamMsg) -> usize {
        match msg {
            DamMsg::Gossip { events, .. } => {
                12 + events.iter().map(Event::size_bytes).sum::<usize>()
            }
            DamMsg::Handoff { event } => 8 + event.size_bytes(),
        }
    }

    fn trace_payload(msg: &DamMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        match msg {
            DamMsg::Gossip { events, .. } => {
                for e in events {
                    emit(
                        e.id().as_u64(),
                        e.topic().as_u32(),
                        e.size_bytes() as u32,
                        HopKind::GossipPush,
                    );
                }
            }
            DamMsg::Handoff { event } => emit(
                event.id().as_u64(),
                event.topic().as_u32(),
                event.size_bytes() as u32,
                HopKind::GossipHandoff,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimTime, Simulation};

    fn build(n: usize, groups: GroupTable, space: TopicSpace) -> Simulation<DamNode> {
        let groups = Arc::new(groups);
        let space = Arc::new(space);
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)));
        Simulation::new(n, net, 31, move |id, _| {
            DamNode::new(
                id,
                DamConfig::default(),
                Arc::clone(&groups),
                Arc::clone(&space),
            )
        })
    }

    #[test]
    fn events_stay_inside_the_group() {
        let n = 32;
        let topic = TopicId::new(0);
        let members: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members.clone());
        let mut sim = build(n, groups, TopicSpace::flat(1));
        for m in &members {
            sim.schedule_command(SimTime::ZERO, *m, DamCmd::SubscribeTopic(topic));
        }
        let e = Event::bare(EventId::new(0, 1), topic);
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(0),
            DamCmd::Publish(e.clone()),
        );
        sim.run_until(SimTime::from_secs(5));
        for (id, node) in sim.nodes() {
            if members.contains(&id) {
                assert!(node.deliveries().contains(e.id()), "{id} member missed");
            } else {
                assert!(node.deliveries().is_empty());
                assert_eq!(
                    node.ledger().totals().forwarded_msgs,
                    0,
                    "{id} outside the group must do zero work"
                );
            }
        }
    }

    #[test]
    fn outside_publisher_hands_off() {
        let n = 16;
        let topic = TopicId::new(0);
        let members: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members.clone());
        let mut sim = build(n, groups, TopicSpace::flat(1));
        for m in &members {
            sim.schedule_command(SimTime::ZERO, *m, DamCmd::SubscribeTopic(topic));
        }
        // Node 10 is not in the group but publishes.
        let e = Event::bare(EventId::new(10, 1), topic);
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(10),
            DamCmd::Publish(e.clone()),
        );
        sim.run_until(SimTime::from_secs(5));
        let got = members
            .iter()
            .filter(|m| sim.node(**m).unwrap().deliveries().contains(e.id()))
            .count();
        assert_eq!(got, members.len(), "handoff reaches the whole group");
    }

    #[test]
    fn supertopic_bridges_forward_without_delivering() {
        // Hierarchy: root -> sub. Node 0 is enrolled in `sub`'s group as a
        // bridge (supertopic member) but only subscribes to an unrelated
        // topic -> it forwards sub-traffic with zero benefit.
        let mut space = TopicSpace::new();
        let root = space.register("root").unwrap();
        let sub = space.register_under("root/sub", root).unwrap();
        let n = 16;
        let mut members: Vec<NodeId> = (1..6).map(NodeId::new).collect();
        members.push(NodeId::new(0)); // the bridge
        let mut groups = GroupTable::new();
        groups.insert(sub, members.clone());
        let mut sim = build(n, groups, space);
        for m in 1..6u32 {
            sim.schedule_command(SimTime::ZERO, NodeId::new(m), DamCmd::SubscribeTopic(sub));
        }
        for k in 0..10u32 {
            sim.schedule_command(
                SimTime::from_millis(100 * (k as u64 + 1)),
                NodeId::new(1),
                DamCmd::Publish(Event::bare(EventId::new(1, k), sub)),
            );
        }
        sim.run_until(SimTime::from_secs(8));
        let bridge = sim.node(NodeId::new(0)).unwrap();
        assert!(bridge.deliveries().is_empty(), "bridge has no interest");
        assert!(
            bridge.ledger().totals().forwarded_msgs > 0,
            "bridge is conscripted into forwarding — the paper's critique"
        );
    }

    #[test]
    fn hierarchical_subscription_delivers_subtopic_events() {
        let mut space = TopicSpace::new();
        let root = space.register("root").unwrap();
        let sub = space.register_under("root/sub", root).unwrap();
        let members: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(sub, members.clone());
        let mut sim = build(8, groups, space);
        // Node 0 subscribes to the *root*; events arrive on `sub`.
        sim.schedule_command(SimTime::ZERO, NodeId::new(0), DamCmd::SubscribeTopic(root));
        let e = Event::bare(EventId::new(1, 1), sub);
        sim.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(1),
            DamCmd::Publish(e.clone()),
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(
            sim.node(NodeId::new(0))
                .unwrap()
                .deliveries()
                .contains(e.id()),
            "supertopic subscriber delivers subtopic event"
        );
    }

    #[test]
    fn buffers_drain_after_ttl() {
        let topic = TopicId::new(0);
        let members: Vec<NodeId> = (0..4).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members);
        let mut sim = build(8, groups, TopicSpace::flat(1));
        sim.schedule_command(
            SimTime::from_millis(50),
            NodeId::new(0),
            DamCmd::Publish(Event::bare(EventId::new(0, 1), topic)),
        );
        sim.run_until(SimTime::from_secs(3));
        let sent_before: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        sim.run_until(SimTime::from_secs(4));
        let sent_after: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
        assert_eq!(sent_before, sent_after, "gossip stops after TTL drain");
    }
}
