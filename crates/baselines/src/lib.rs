//! # fed-baselines
//!
//! Every architecture the paper's §4 ("How Fair Are Existing Approaches?")
//! analyses, implemented over the same simulator and the same fairness
//! ledger as the core protocol so their contribution/benefit ratios are
//! directly comparable:
//!
//! | Module | System | Paper's fairness verdict |
//! |---|---|---|
//! | [`broker`] | Central broker | one node does everything |
//! | [`scribe`] | Scribe over Pastry (§4.1) | uninterested interior nodes forward; rendezvous hotspots |
//! | [`dks`] | DKS-style groups + index DHT (§4.1) | index-route relays suffer |
//! | [`dam`] | Data-aware multicast (§4.2) | fair *except* supertopic bridges |
//! | [`splitstream`] | SplitStream forest (§3.1) | load-balanced but benefit-blind |
//!
//! The classic static-fanout gossip baseline is
//! [`fed_core::gossip::GossipNode`] with
//! [`fed_core::gossip::GossipConfig::classic`] — identical code path to the
//! fair protocol with adaptation switched off, so comparisons isolate the
//! adaptation itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod common;
pub mod dam;
pub mod dks;
pub mod scribe;
pub mod splitstream;

pub use broker::{BrokerCmd, BrokerMsg, BrokerNode};
pub use common::DeliveryLog;
pub use dam::{DamCmd, DamConfig, DamMsg, DamNode, GroupTable};
pub use dks::{DksCmd, DksConfig, DksMsg, DksNode};
pub use scribe::{ScribeCmd, ScribeMsg, ScribeNode};
pub use splitstream::{Forest, SplitStreamNode, StripeCmd, StripeMsg};
