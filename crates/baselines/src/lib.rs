//! # fed-baselines
//!
//! Every architecture the paper's §4 ("How Fair Are Existing Approaches?")
//! analyses, implemented over the same simulator and the same fairness
//! ledger as the core protocol so their contribution/benefit ratios are
//! directly comparable:
//!
//! | Module | System | Paper's fairness verdict |
//! |---|---|---|
//! | [`broker`] | Central broker | one node does everything |
//! | [`scribe`] | Scribe over Pastry (§4.1) | uninterested interior nodes forward; rendezvous hotspots |
//! | [`dks`] | DKS-style groups + index DHT (§4.1) | index-route relays suffer |
//! | [`dam`] | Data-aware multicast (§4.2) | fair *except* supertopic bridges |
//! | [`splitstream`] | SplitStream forest (§3.1) | load-balanced but benefit-blind |
//!
//! The classic static-fanout gossip baseline is
//! [`fed_core::gossip::GossipNode`] with
//! [`fed_core::gossip::GossipConfig::classic`] — identical code path to the
//! fair protocol with adaptation switched off, so comparisons isolate the
//! adaptation itself.
//!
//! Every node type implements [`fed_sim::Protocol`], so a baseline runs
//! on either engine exactly like the core protocol; the experiment
//! harness's `ArchProtocol` adapter (in `fed-experiments`) drives all of
//! them through one scheduling path. Shared routing infrastructure (the
//! DHT of [`scribe`]/[`dks`], the [`splitstream`] forest, the group
//! tables of [`dks`]/[`dam`]) is built deterministically up front and
//! handed to every node immutably.
//!
//! ## Examples
//!
//! A three-node broker system delivering one event to one subscriber:
//!
//! ```
//! use fed_baselines::broker::{BrokerCmd, BrokerNode};
//! use fed_pubsub::{Event, EventId, TopicId};
//! use fed_sim::network::NetworkModel;
//! use fed_sim::{NodeId, SimTime, Simulation};
//!
//! let broker = NodeId::new(0);
//! let mut sim = Simulation::new(3, NetworkModel::default(), 1, move |id, _| {
//!     BrokerNode::new(id, broker)
//! });
//! let topic = TopicId::new(0);
//! sim.schedule_command(SimTime::ZERO, NodeId::new(1), BrokerCmd::SubscribeTopic(topic));
//! sim.schedule_command(
//!     SimTime::from_millis(200),
//!     NodeId::new(2),
//!     BrokerCmd::Publish(Event::bare(EventId::new(2, 0), topic)),
//! );
//! sim.run_until(SimTime::from_secs(2));
//! let subscriber = sim.nodes().find(|(id, _)| *id == NodeId::new(1)).unwrap().1;
//! assert_eq!(subscriber.deliveries().len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod common;
pub mod dam;
pub mod dks;
pub mod hybrid;
pub mod scribe;
pub mod splitstream;

pub use broker::{BrokerCmd, BrokerMsg, BrokerNode};
pub use common::DeliveryLog;
pub use dam::{DamCmd, DamConfig, DamMsg, DamNode, GroupTable};
pub use dks::{DksCmd, DksConfig, DksMsg, DksNode};
pub use scribe::{ScribeCmd, ScribeMsg, ScribeNode};
pub use splitstream::{Forest, SplitStreamNode, StripeCmd, StripeMsg};
