//! Broker/gossip hybrid with telemetry-driven strategy switching.
//!
//! The paper's tension is between centralized brokers (cheap, unfair,
//! fragile under load) and fair gossip (decentralized, load-tolerant,
//! chattier). This architecture runs *both* stacks on every node and
//! switches strategy at runtime: the system starts in broker mode, the
//! hub self-monitors its publish load per window, and when a window
//! exceeds the configured threshold (a flash crowd) the hub broadcasts a
//! [`HybridMsg::Switch`] — after which every node publishes through fair
//! gossip instead.
//!
//! Both embedded protocols are driven through [`Context::scoped`], so
//! they see fully functional deterministic contexts sharing the node's
//! RNG stream: the hybrid is bit-identical across engines and shard
//! counts like any other [`Protocol`]. Timer tokens are namespaced —
//! gossip owns tokens `1`, `2` and the `3 << 56`/`4 << 56` SWIM
//! namespaces, the hybrid's own monitor timer lives at `5 << 56` — so
//! `on_timer` routes unambiguously.
//!
//! Subscriptions are mirrored into both stacks at all times; only the
//! *publish* path switches. In-flight broker traffic keeps being served
//! after the switch (the broker stack stays alive), so no event is
//! stranded by the handover. A node that was crashed during the switch
//! broadcast rejoins in broker mode; its publishes still reach
//! subscribers through the hub, which keeps dispatching broker traffic
//! in either mode.

use crate::broker::{BrokerCmd, BrokerMsg, BrokerNode};
use fed_core::behavior::Behavior;
use fed_core::gossip::{GossipCmd, GossipConfig, GossipMsg, GossipNode};
use fed_core::ledger::FairnessLedger;
use fed_membership::swim::SwimObservation;
use fed_membership::FullMembership;
use fed_pubsub::{Event, EventId, TopicId};
use fed_sim::{Context, NodeId, Protocol, SimDuration, SimTime};

/// Timer token of the hub's load-monitor window. Must not collide with
/// the embedded gossip node's tokens (`1`, `2`, `3 << 56 | seq`,
/// `4 << 56 | seq`); the broker has no timers.
const MONITOR_TIMER: u64 = 5 << 56;

/// Configuration of the [`HybridNode`].
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// The broker hub (also the node that monitors load and triggers
    /// the switch).
    pub hub: NodeId,
    /// Configuration of the embedded fair-gossip stack.
    pub gossip: GossipConfig,
    /// Length of the hub's load-monitoring window.
    pub monitor_window: SimDuration,
    /// Publish submissions per monitor window above which the hub
    /// declares a load spike and broadcasts the switch.
    pub spike_threshold: u64,
}

impl HybridConfig {
    /// The comparison configuration: hub 0, the T-ARCH fair-gossip
    /// stack, and a spike threshold of 64 publishes per 500 ms window
    /// (128/s) — comfortably above the standard scenarios' base rates
    /// and comfortably below their flash-crowd rates.
    pub fn standard() -> Self {
        HybridConfig {
            hub: NodeId::new(0),
            gossip: GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
            monitor_window: SimDuration::from_millis(500),
            spike_threshold: 64,
        }
    }
}

/// Wire messages of the hybrid: each embedded stack's traffic wrapped in
/// its own variant, plus the strategy-switch broadcast.
#[derive(Debug, Clone)]
pub enum HybridMsg {
    /// Broker-stack traffic.
    B(BrokerMsg),
    /// Gossip-stack traffic.
    G(GossipMsg),
    /// Hub → everyone: publish through gossip from now on.
    Switch,
}

/// Commands for the experiment driver.
#[derive(Debug, Clone)]
pub enum HybridCmd {
    /// Subscribe to a topic (mirrored into both stacks).
    SubscribeTopic(TopicId),
    /// Publish an event through the currently active strategy.
    Publish(Event),
}

/// Which strategy the node currently publishes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Broker,
    Gossip,
}

/// A node running the broker/gossip hybrid.
#[derive(Debug)]
pub struct HybridNode {
    id: NodeId,
    config: HybridConfig,
    broker: BrokerNode,
    gossip: GossipNode<FullMembership>,
    mode: Mode,
    /// When this node switched to gossip, if it has.
    switched_at: Option<SimTime>,
    /// Publish submissions the hub saw in the current monitor window.
    window_publishes: u64,
}

impl HybridNode {
    /// Creates a hybrid node for a system of `n` nodes.
    pub fn new(id: NodeId, n: usize, config: HybridConfig) -> Self {
        let broker = BrokerNode::new(id, config.hub);
        let gossip = GossipNode::with_behavior(
            id,
            config.gossip.clone(),
            FullMembership::new(id, n),
            Behavior::Honest,
        );
        HybridNode {
            id,
            config,
            broker,
            gossip,
            mode: Mode::Broker,
            switched_at: None,
            window_publishes: 0,
        }
    }

    /// When this node switched its publish path to gossip (`None` while
    /// still in broker mode).
    pub fn switched_at(&self) -> Option<SimTime> {
        self.switched_at
    }

    /// The embedded gossip stack's SWIM observation log.
    pub fn swim_observations(&self) -> Vec<SwimObservation> {
        self.gossip.swim_observations()
    }

    /// Merged fairness ledger of both stacks.
    pub fn merged_ledger(&self) -> FairnessLedger {
        let mut ledger = self.broker.ledger().clone();
        ledger.absorb(self.gossip.ledger());
        ledger
    }

    /// Union of both stacks' delivery logs, deduplicated by event id
    /// (earliest delivery wins), sorted by event id.
    pub fn merged_deliveries(&self) -> Vec<(EventId, SimTime)> {
        let mut merged: Vec<(EventId, SimTime)> = self.broker.deliveries().iter().collect();
        merged.extend(
            self.gossip
                .deliveries()
                .iter()
                .map(|(&id, rec)| (id, rec.at)),
        );
        merged.sort_unstable();
        merged.dedup_by_key(|&mut (id, _)| id);
        merged
    }

    fn switch(&mut self, now: SimTime) {
        if self.mode == Mode::Broker {
            self.mode = Mode::Gossip;
            self.switched_at = Some(now);
        }
    }
}

impl Protocol for HybridNode {
    type Msg = HybridMsg;
    type Cmd = HybridCmd;

    fn on_init(&mut self, ctx: &mut Context<'_, HybridMsg>) {
        let broker = &mut self.broker;
        ctx.scoped(HybridMsg::B, |c| broker.on_init(c));
        let gossip = &mut self.gossip;
        ctx.scoped(HybridMsg::G, |c| gossip.on_init(c));
        if self.id == self.config.hub {
            ctx.set_timer(self.config.monitor_window, MONITOR_TIMER);
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, HybridMsg>, from: NodeId, msg: HybridMsg) {
        match msg {
            HybridMsg::B(m) => {
                if matches!(m, BrokerMsg::Publish(_)) {
                    self.window_publishes += 1;
                }
                let broker = &mut self.broker;
                ctx.scoped(HybridMsg::B, |c| broker.on_message(c, from, m));
            }
            HybridMsg::G(m) => {
                let gossip = &mut self.gossip;
                ctx.scoped(HybridMsg::G, |c| gossip.on_message(c, from, m));
            }
            HybridMsg::Switch => self.switch(ctx.now()),
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, HybridMsg>, token: u64) {
        if token == MONITOR_TIMER {
            if self.mode == Mode::Broker {
                if self.window_publishes > self.config.spike_threshold {
                    // Load spike: hand the system over to fair gossip.
                    for peer in 0..ctx.system_size() {
                        let peer = NodeId::new(peer as u32);
                        if peer != self.id {
                            ctx.send(peer, HybridMsg::Switch);
                        }
                    }
                    self.switch(ctx.now());
                } else {
                    self.window_publishes = 0;
                    ctx.set_timer(self.config.monitor_window, MONITOR_TIMER);
                }
            }
        } else {
            let gossip = &mut self.gossip;
            ctx.scoped(HybridMsg::G, |c| gossip.on_timer(c, token));
        }
    }

    fn on_command(&mut self, ctx: &mut Context<'_, HybridMsg>, cmd: HybridCmd) {
        match cmd {
            HybridCmd::SubscribeTopic(topic) => {
                let broker = &mut self.broker;
                ctx.scoped(HybridMsg::B, |c| {
                    broker.on_command(c, BrokerCmd::SubscribeTopic(topic))
                });
                let gossip = &mut self.gossip;
                ctx.scoped(HybridMsg::G, |c| {
                    gossip.on_command(c, GossipCmd::SubscribeTopic(topic))
                });
            }
            HybridCmd::Publish(event) => match self.mode {
                Mode::Broker => {
                    // The hub publishes locally: count it like a remote
                    // submission so local load also trips the monitor.
                    if self.id == self.config.hub {
                        self.window_publishes += 1;
                    }
                    let broker = &mut self.broker;
                    ctx.scoped(HybridMsg::B, |c| {
                        broker.on_command(c, BrokerCmd::Publish(event))
                    });
                }
                Mode::Gossip => {
                    let gossip = &mut self.gossip;
                    ctx.scoped(HybridMsg::G, |c| {
                        gossip.on_command(c, GossipCmd::Publish(event))
                    });
                }
            },
        }
    }

    fn on_crash(&mut self, at: SimTime) {
        self.broker.on_crash(at);
        self.gossip.on_crash(at);
        self.window_publishes = 0;
    }

    fn message_size(msg: &HybridMsg) -> usize {
        match msg {
            HybridMsg::B(m) => BrokerNode::message_size(m),
            HybridMsg::G(m) => GossipNode::<FullMembership>::message_size(m),
            HybridMsg::Switch => 8,
        }
    }

    fn trace_payload(msg: &HybridMsg, emit: &mut dyn FnMut(u64, u32, u32, fed_sim::HopKind)) {
        // Hops keep the embedded stack's tags, so a trace shows which
        // strategy carried each event across the handover.
        match msg {
            HybridMsg::B(m) => BrokerNode::trace_payload(m, emit),
            HybridMsg::G(m) => GossipNode::<FullMembership>::trace_payload(m, emit),
            HybridMsg::Switch => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_pubsub::EventId;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::Simulation;

    fn sim(n: usize, config: HybridConfig) -> Simulation<HybridNode> {
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
        Simulation::new(n, net, 11, move |id, _| {
            HybridNode::new(id, n, config.clone())
        })
    }

    fn topic_event(seq: u32, topic: TopicId) -> Event {
        Event::bare(EventId::new(1, seq), topic)
    }

    #[test]
    fn broker_mode_delivers_without_switching() {
        let mut s = sim(8, HybridConfig::standard());
        let topic = TopicId::new(1);
        for i in 0..8u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                HybridCmd::SubscribeTopic(topic),
            );
        }
        for seq in 0..10 {
            s.schedule_command(
                SimTime::from_millis(100 + 50 * seq),
                NodeId::new(3),
                HybridCmd::Publish(topic_event(seq as u32, topic)),
            );
        }
        s.run_until(SimTime::from_secs(3));
        for (id, node) in s.nodes() {
            assert_eq!(node.switched_at(), None, "{id:?} switched under no load");
            assert_eq!(node.merged_deliveries().len(), 10, "{id:?}");
        }
    }

    #[test]
    fn load_spike_triggers_switch_and_gossip_still_delivers() {
        let config = HybridConfig {
            spike_threshold: 5,
            ..HybridConfig::standard()
        };
        let mut s = sim(8, config);
        let topic = TopicId::new(1);
        for i in 0..8u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                HybridCmd::SubscribeTopic(topic),
            );
        }
        // A burst well past the threshold inside one monitor window…
        for seq in 0..20 {
            s.schedule_command(
                SimTime::from_millis(100 + 5 * seq),
                NodeId::new(3),
                HybridCmd::Publish(topic_event(seq as u32, topic)),
            );
        }
        // …then traffic published long after the switch completed.
        for seq in 100..110 {
            s.schedule_command(
                SimTime::from_millis(2_000 + 50 * (seq - 100)),
                NodeId::new(5),
                HybridCmd::Publish(topic_event(seq as u32, topic)),
            );
        }
        s.run_until(SimTime::from_secs(6));
        for (id, node) in s.nodes() {
            let at = node.switched_at().expect("every node switches");
            assert!(at >= SimTime::from_millis(500), "{id:?} switched at {at}");
            assert_eq!(node.merged_deliveries().len(), 30, "{id:?}");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let config = HybridConfig {
                spike_threshold: 5,
                ..HybridConfig::standard()
            };
            let mut s = sim(12, config);
            let topic = TopicId::new(2);
            for i in 0..12u32 {
                s.schedule_command(
                    SimTime::ZERO,
                    NodeId::new(i),
                    HybridCmd::SubscribeTopic(topic),
                );
            }
            for seq in 0..30 {
                s.schedule_command(
                    SimTime::from_millis(100 + 7 * seq),
                    NodeId::new((seq % 12) as u32),
                    HybridCmd::Publish(topic_event(seq as u32, topic)),
                );
            }
            s.run_until(SimTime::from_secs(5));
            let logs: Vec<_> = s.nodes().map(|(_, n)| n.merged_deliveries()).collect();
            let switches: Vec<_> = s.nodes().map(|(_, n)| n.switched_at()).collect();
            (logs, switches, s.events_processed())
        };
        assert_eq!(run(), run());
    }
}
