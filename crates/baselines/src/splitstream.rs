//! SplitStream-style striped multicast forest (paper §3.1, reference \[7\]).
//!
//! SplitStream's goal is **load balancing**, not fairness: content is
//! split into `k` stripes, each disseminated down its own tree, and the
//! forest is *interior-node-disjoint* — every node is interior in exactly
//! one stripe and a leaf elsewhere, so forwarding load is spread evenly.
//!
//! The paper's §3.2 point, reproduced by experiment T-ARCH, is that this
//! evenness is "irrespective of the benefits or contribution of the actual
//! participants": a peer interested in nothing still carries a full
//! interior position. Load balancing ≠ fairness.

use crate::common::DeliveryLog;
use fed_core::ledger::FairnessLedger;
use fed_pubsub::{Event, SubscriptionTable, TopicId};
use fed_sim::{Context, HopKind, NodeId, Protocol};
use std::sync::Arc;

/// The interior-node-disjoint forest over `n` nodes.
#[derive(Debug, Clone)]
pub struct Forest {
    n: usize,
    stripes: usize,
    branching: usize,
    /// `order[s]` is the node ordering of stripe `s`: interiors first.
    order: Vec<Vec<usize>>,
    /// `pos[s][node]` is the node's position in stripe `s`'s ordering.
    pos: Vec<Vec<usize>>,
}

impl Forest {
    /// Builds a forest of `stripes` trees with the given branching factor.
    ///
    /// Node `i` is interior-eligible only in stripe `i % stripes`; within a
    /// stripe, interior-eligible nodes occupy the top of a complete
    /// `branching`-ary tree, everyone else is a leaf.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero or `branching < stripes` (which would
    /// force non-eligible nodes into interior positions).
    pub fn build(n: usize, stripes: usize, branching: usize) -> Self {
        assert!(
            n > 0 && stripes > 0 && branching > 0,
            "parameters must be positive"
        );
        assert!(
            branching >= stripes,
            "branching must be >= stripes for interior disjointness"
        );
        let mut order = Vec::with_capacity(stripes);
        let mut pos = Vec::with_capacity(stripes);
        for s in 0..stripes {
            let interiors = (0..n).filter(|i| i % stripes == s);
            let leaves = (0..n).filter(|i| i % stripes != s);
            let ordering: Vec<usize> = interiors.chain(leaves).collect();
            let mut position = vec![0usize; n];
            for (p, &node) in ordering.iter().enumerate() {
                position[node] = p;
            }
            order.push(ordering);
            pos.push(position);
        }
        Forest {
            n,
            stripes,
            branching,
            order,
            pos,
        }
    }

    /// Number of stripes.
    pub fn stripes(&self) -> usize {
        self.stripes
    }

    /// The stripe an event belongs to (by publisher sequence).
    pub fn stripe_of(&self, event: &Event) -> usize {
        event.id().seq() as usize % self.stripes
    }

    /// Root node of a stripe.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range.
    pub fn root(&self, stripe: usize) -> NodeId {
        NodeId::new(self.order[stripe][0] as u32)
    }

    /// Children of `node` in `stripe`'s tree.
    ///
    /// # Panics
    ///
    /// Panics if `stripe` is out of range or `node` is not in the forest.
    pub fn children(&self, stripe: usize, node: NodeId) -> Vec<NodeId> {
        let p = self.pos[stripe][node.index()];
        let first = p * self.branching + 1;
        (first..(first + self.branching).min(self.n))
            .map(|c| NodeId::new(self.order[stripe][c] as u32))
            .collect()
    }

    /// Whether `node` has children in `stripe` (is interior).
    pub fn is_interior(&self, stripe: usize, node: NodeId) -> bool {
        !self.children(stripe, node).is_empty()
    }
}

/// Wire messages.
#[derive(Debug, Clone)]
pub enum StripeMsg {
    /// Event travelling to its stripe root.
    ToRoot(Event),
    /// Event flowing down the stripe tree.
    Down(Event),
}

/// Driver commands.
#[derive(Debug, Clone)]
pub enum StripeCmd {
    /// Publish an event.
    Publish(Event),
    /// Subscribe (delivery-side interest only; the forest carries all
    /// events to everyone — SplitStream is a broadcast system).
    SubscribeTopic(TopicId),
}

/// A SplitStream-style node.
#[derive(Debug)]
pub struct SplitStreamNode {
    id: NodeId,
    forest: Arc<Forest>,
    subs: SubscriptionTable,
    ledger: FairnessLedger,
    log: DeliveryLog,
}

impl SplitStreamNode {
    /// Creates a node over a shared forest.
    pub fn new(id: NodeId, forest: Arc<Forest>) -> Self {
        SplitStreamNode {
            id,
            forest,
            subs: SubscriptionTable::new(),
            ledger: FairnessLedger::new(),
            log: DeliveryLog::new(),
        }
    }

    /// Fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Delivery log.
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.log
    }

    fn relay_down(&mut self, ctx: &mut Context<'_, StripeMsg>, event: &Event) {
        let stripe = self.forest.stripe_of(event);
        let size = event.size_bytes();
        for child in self.forest.children(stripe, self.id) {
            ctx.send(child, StripeMsg::Down(event.clone()));
            self.ledger.record_forward(size);
        }
    }

    fn deliver_if_interested(&mut self, ctx: &Context<'_, StripeMsg>, event: &Event) {
        if self.subs.matches(event) && self.log.deliver(event, ctx.now()) {
            self.ledger.record_delivery();
        }
    }
}

impl Protocol for SplitStreamNode {
    type Msg = StripeMsg;
    type Cmd = StripeCmd;

    fn on_init(&mut self, _ctx: &mut Context<'_, StripeMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, StripeMsg>, _from: NodeId, msg: StripeMsg) {
        match msg {
            StripeMsg::ToRoot(event) => {
                self.deliver_if_interested(ctx, &event);
                self.relay_down(ctx, &event);
            }
            StripeMsg::Down(event) => {
                self.deliver_if_interested(ctx, &event);
                self.relay_down(ctx, &event);
            }
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, StripeMsg>, _token: u64) {}

    fn on_command(&mut self, ctx: &mut Context<'_, StripeMsg>, cmd: StripeCmd) {
        match cmd {
            StripeCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                let stripe = self.forest.stripe_of(&event);
                let root = self.forest.root(stripe);
                if root == self.id {
                    self.deliver_if_interested(ctx, &event);
                    self.relay_down(ctx, &event);
                } else {
                    ctx.send(root, StripeMsg::ToRoot(event));
                }
            }
            StripeCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
            }
        }
    }

    fn message_size(msg: &StripeMsg) -> usize {
        match msg {
            StripeMsg::ToRoot(e) | StripeMsg::Down(e) => 8 + e.size_bytes(),
        }
    }

    fn trace_payload(msg: &StripeMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        let (e, kind) = match msg {
            StripeMsg::ToRoot(e) => (e, HopKind::StripeToRoot),
            StripeMsg::Down(e) => (e, HopKind::StripeEdge),
        };
        emit(
            e.id().as_u64(),
            e.topic().as_u32(),
            e.size_bytes() as u32,
            kind,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_pubsub::EventId;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimDuration, SimTime, Simulation};

    #[test]
    fn forest_invariants() {
        let n = 64;
        let k = 4;
        let f = Forest::build(n, k, 4);
        for s in 0..k {
            // Every node appears exactly once per stripe ordering.
            let mut seen = vec![false; n];
            for &node in &f.order[s] {
                assert!(!seen[node]);
                seen[node] = true;
            }
            assert!(seen.iter().all(|&b| b));
            // Interior-disjointness: interior nodes of stripe s are
            // eligible (index % k == s).
            for i in 0..n {
                let node = NodeId::new(i as u32);
                if f.is_interior(s, node) {
                    assert_eq!(i % k, s, "node {i} interior outside its stripe");
                }
            }
        }
    }

    #[test]
    fn every_node_is_interior_in_exactly_one_stripe() {
        let n = 48;
        let k = 4;
        let f = Forest::build(n, k, 6);
        for i in 0..n {
            let node = NodeId::new(i as u32);
            let interior_count = (0..k).filter(|&s| f.is_interior(s, node)).count();
            // Nodes late in their stripe ordering can be leaves everywhere
            // (small stripes), but never interior in more than one stripe.
            assert!(interior_count <= 1, "node {i} interior in {interior_count}");
        }
        // And the forwarding positions exist: each stripe has interiors.
        for s in 0..k {
            assert!(f.is_interior(s, f.root(s)));
        }
    }

    #[test]
    #[should_panic(expected = "branching must be >= stripes")]
    fn forest_rejects_thin_branching() {
        let _ = Forest::build(16, 8, 4);
    }

    fn sim(n: usize, stripes: usize) -> Simulation<SplitStreamNode> {
        let forest = Arc::new(Forest::build(n, stripes, stripes.max(4)));
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)));
        Simulation::new(n, net, 5, move |id, _| {
            SplitStreamNode::new(id, Arc::clone(&forest))
        })
    }

    #[test]
    fn all_subscribers_receive_all_stripes() {
        let n = 32;
        let mut s = sim(n, 4);
        let topic = TopicId::new(0);
        for i in 0..n as u32 {
            s.schedule_command(
                SimTime::ZERO,
                NodeId::new(i),
                StripeCmd::SubscribeTopic(topic),
            );
        }
        // publish 8 events -> spread across 4 stripes by seq
        for k in 0..8u32 {
            s.schedule_command(
                SimTime::from_millis(100 + k as u64),
                NodeId::new(5),
                StripeCmd::Publish(Event::bare(EventId::new(5, k), topic)),
            );
        }
        s.run_until(SimTime::from_secs(5));
        for (_, node) in s.nodes() {
            assert_eq!(node.deliveries().len(), 8);
        }
    }

    #[test]
    fn forwarding_load_is_balanced_but_interest_blind() {
        let n = 32;
        let stripes = 4;
        let mut s = sim(n, stripes);
        // only node 1 subscribes; everyone else is uninterested.
        s.schedule_command(
            SimTime::ZERO,
            NodeId::new(1),
            StripeCmd::SubscribeTopic(TopicId::new(0)),
        );
        for k in 0..40u32 {
            s.schedule_command(
                SimTime::from_millis(100 + 10 * k as u64),
                NodeId::new(2),
                StripeCmd::Publish(Event::bare(EventId::new(2, k), TopicId::new(0))),
            );
        }
        s.run_until(SimTime::from_secs(10));
        // Load balancing works: interior nodes of every stripe forwarded.
        let forwarders = s
            .nodes()
            .filter(|(_, p)| p.ledger().totals().forwarded_msgs > 0)
            .count();
        assert!(forwarders >= stripes, "at least the interiors forward");
        // But fairness fails: uninterested nodes did forwarding work.
        let unfair = s
            .nodes()
            .filter(|(id, p)| id.index() != 1 && p.ledger().totals().forwarded_msgs > 0)
            .count();
        assert!(unfair > 0, "load-balanced forwarding ignores benefit");
    }

    #[test]
    fn publisher_at_root_short_circuits() {
        let n = 16;
        let forest = Forest::build(n, 2, 4);
        let root0 = forest.root(0);
        let mut s = sim(n, 2);
        s.schedule_command(
            SimTime::ZERO,
            root0,
            StripeCmd::SubscribeTopic(TopicId::new(0)),
        );
        // seq 0 -> stripe 0, whose root is root0.
        let e = Event::bare(EventId::new(root0.as_u32(), 0), TopicId::new(0));
        s.schedule_command(
            SimTime::from_millis(50),
            root0,
            StripeCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(2));
        assert!(s.node(root0).unwrap().deliveries().contains(e.id()));
    }
}
