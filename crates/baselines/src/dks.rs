//! DKS-style multicast: per-topic groups reached through an index DHT
//! (paper §4.1, the paper's reference \[1\]).
//!
//! "Other approaches like DKS use multiple DHTs to group processes
//! according to their interest and have a special index DHT that allows
//! subscribers to find a correct topic. This allows, when publishing an
//! event, to only involve those processes with a matching subscription.
//! Nevertheless, similar to Scribe some processes in the index DHT which
//! are close to frequently contacted rendezvous nodes will suffer for the
//! same reasons."
//!
//! Model: publications are routed through the index DHT to the topic's
//! index node; the index node injects the event into the topic group
//! (subscribers only), which floods it internally with an infect-and-die
//! epidemic. Group members only handle traffic they want — but index-route
//! relays and index nodes work for topics they never subscribed to.

use crate::common::DeliveryLog;
use crate::dam::GroupTable;
use fed_core::ledger::FairnessLedger;
use fed_dht::{DhtId, DhtNetwork};
use fed_pubsub::{Event, EventId, SubscriptionTable, TopicId};
use fed_sim::{Context, HopKind, NodeId, Protocol};
use fed_util::rng::Rng64;
use std::collections::HashSet;
use std::sync::Arc;

/// Wire messages.
#[derive(Debug, Clone)]
pub enum DksMsg {
    /// Publication routed through the index DHT.
    IndexRoute {
        /// The event.
        event: Event,
    },
    /// Intra-group epidemic.
    GroupFlood {
        /// The event.
        event: Event,
    },
}

/// Driver commands.
#[derive(Debug, Clone)]
pub enum DksCmd {
    /// Publish an event.
    Publish(Event),
    /// Subscribe to a topic (delivery interest; group membership comes from
    /// the static [`GroupTable`], mirroring `fed_baselines::dam`).
    SubscribeTopic(TopicId),
}

/// Configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DksConfig {
    /// Infect-and-die fanout inside the group.
    pub group_fanout: usize,
    /// How many seed members the index node contacts.
    pub seeds: usize,
}

impl Default for DksConfig {
    fn default() -> Self {
        DksConfig {
            group_fanout: 4,
            seeds: 2,
        }
    }
}

/// A DKS-style node.
#[derive(Debug)]
pub struct DksNode {
    id: NodeId,
    config: DksConfig,
    dht: Arc<DhtNetwork>,
    groups: Arc<GroupTable>,
    subs: SubscriptionTable,
    seen: HashSet<EventId>,
    ledger: FairnessLedger,
    log: DeliveryLog,
}

impl DksNode {
    /// Creates a node over shared index DHT and group tables.
    pub fn new(
        id: NodeId,
        config: DksConfig,
        dht: Arc<DhtNetwork>,
        groups: Arc<GroupTable>,
    ) -> Self {
        DksNode {
            id,
            config,
            dht,
            groups,
            subs: SubscriptionTable::new(),
            seen: HashSet::new(),
            ledger: FairnessLedger::new(),
            log: DeliveryLog::new(),
        }
    }

    /// Fairness ledger.
    pub fn ledger(&self) -> &FairnessLedger {
        &self.ledger
    }

    /// Delivery log.
    pub fn deliveries(&self) -> &DeliveryLog {
        &self.log
    }

    fn next_hop(&self, topic: TopicId) -> Option<NodeId> {
        self.dht
            .state_of(self.id.index())
            .expect("node in DHT")
            .next_hop(DhtId::of_topic(topic.index()))
            .map(|n| NodeId::new(n.index as u32))
    }

    fn group_peers(&self, topic: TopicId) -> Vec<NodeId> {
        self.groups
            .get(&topic)
            .map(|g| g.iter().copied().filter(|&p| p != self.id).collect())
            .unwrap_or_default()
    }

    fn flood_once(&mut self, ctx: &mut Context<'_, DksMsg>, event: &Event) {
        let peers = self.group_peers(event.topic());
        if peers.is_empty() {
            return;
        }
        let k = self.config.group_fanout.min(peers.len());
        let picked = ctx.rng().sample_indices(peers.len(), k);
        let size = event.size_bytes();
        for i in picked {
            ctx.send(
                peers[i],
                DksMsg::GroupFlood {
                    event: event.clone(),
                },
            );
            self.ledger.record_forward(size);
        }
    }

    fn accept_in_group(&mut self, ctx: &mut Context<'_, DksMsg>, event: Event) {
        if !self.seen.insert(event.id()) {
            return; // infect-and-die: forward only on first receipt
        }
        if self.subs.matches(&event) {
            let now = ctx.now();
            if self.log.deliver(&event, now) {
                self.ledger.record_delivery();
            }
        }
        self.flood_once(ctx, &event);
    }
}

impl Protocol for DksNode {
    type Msg = DksMsg;
    type Cmd = DksCmd;

    fn on_init(&mut self, _ctx: &mut Context<'_, DksMsg>) {}

    fn on_message(&mut self, ctx: &mut Context<'_, DksMsg>, _from: NodeId, msg: DksMsg) {
        match msg {
            DksMsg::IndexRoute { event } => match self.next_hop(event.topic()) {
                Some(next) => {
                    // Index-route relay: work for an arbitrary topic.
                    self.ledger.record_forward(event.size_bytes());
                    ctx.send(next, DksMsg::IndexRoute { event });
                }
                None => {
                    // We are the index node for this topic: seed the group.
                    let peers = self.group_peers(event.topic());
                    let k = self.config.seeds.min(peers.len());
                    let picked = ctx.rng().sample_indices(peers.len(), k);
                    let size = event.size_bytes();
                    for i in picked {
                        ctx.send(
                            peers[i],
                            DksMsg::GroupFlood {
                                event: event.clone(),
                            },
                        );
                        self.ledger.record_forward(size);
                    }
                    // The index node may itself be a subscriber.
                    if self
                        .groups
                        .get(&event.topic())
                        .map(|g| g.contains(&self.id))
                        .unwrap_or(false)
                    {
                        self.accept_in_group(ctx, event);
                    }
                }
            },
            DksMsg::GroupFlood { event } => self.accept_in_group(ctx, event),
        }
    }

    fn on_timer(&mut self, _ctx: &mut Context<'_, DksMsg>, _token: u64) {}

    fn on_command(&mut self, ctx: &mut Context<'_, DksMsg>, cmd: DksCmd) {
        match cmd {
            DksCmd::Publish(event) => {
                self.ledger.record_publish(event.size_bytes());
                match self.next_hop(event.topic()) {
                    Some(next) => ctx.send(next, DksMsg::IndexRoute { event }),
                    None => {
                        // Publisher is the index node.
                        let msg = DksMsg::IndexRoute { event };
                        if let DksMsg::IndexRoute { event } = msg {
                            // Seed directly.
                            let peers = self.group_peers(event.topic());
                            let k = self.config.seeds.min(peers.len());
                            let picked = ctx.rng().sample_indices(peers.len(), k);
                            let size = event.size_bytes();
                            for i in picked {
                                ctx.send(
                                    peers[i],
                                    DksMsg::GroupFlood {
                                        event: event.clone(),
                                    },
                                );
                                self.ledger.record_forward(size);
                            }
                            if self
                                .groups
                                .get(&event.topic())
                                .map(|g| g.contains(&self.id))
                                .unwrap_or(false)
                            {
                                self.accept_in_group(ctx, event);
                            }
                        }
                    }
                }
            }
            DksCmd::SubscribeTopic(topic) => {
                self.subs.subscribe_topic(topic);
                self.ledger.set_active_filters(self.subs.len() as u32);
            }
        }
    }

    fn message_size(msg: &DksMsg) -> usize {
        match msg {
            DksMsg::IndexRoute { event } | DksMsg::GroupFlood { event } => 8 + event.size_bytes(),
        }
    }

    fn trace_payload(msg: &DksMsg, emit: &mut dyn FnMut(u64, u32, u32, HopKind)) {
        let (e, kind) = match msg {
            DksMsg::IndexRoute { event } => (event, HopKind::DhtRoute),
            DksMsg::GroupFlood { event } => (event, HopKind::GroupFlood),
        };
        emit(
            e.id().as_u64(),
            e.topic().as_u32(),
            e.size_bytes() as u32,
            kind,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::network::{LatencyModel, NetworkModel};
    use fed_sim::{SimDuration, SimTime, Simulation};

    fn build(n: usize, groups: GroupTable) -> Simulation<DksNode> {
        let dht = Arc::new(DhtNetwork::build(n));
        let groups = Arc::new(groups);
        let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(5)));
        let cfg = DksConfig {
            group_fanout: 5,
            seeds: 3,
        };
        Simulation::new(n, net, 41, move |id, _| {
            DksNode::new(id, cfg, Arc::clone(&dht), Arc::clone(&groups))
        })
    }

    #[test]
    fn group_members_receive_events() {
        let n = 64;
        let topic = TopicId::new(2);
        let members: Vec<NodeId> = (10..30).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members.clone());
        let mut s = build(n, groups);
        for m in &members {
            s.schedule_command(SimTime::ZERO, *m, DksCmd::SubscribeTopic(topic));
        }
        let e = Event::bare(EventId::new(50, 1), topic);
        s.schedule_command(
            SimTime::from_millis(100),
            NodeId::new(50),
            DksCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(5));
        let got = members
            .iter()
            .filter(|m| s.node(**m).unwrap().deliveries().contains(e.id()))
            .count();
        assert_eq!(got, members.len(), "epidemic covers the group");
    }

    #[test]
    fn index_relays_work_without_interest() {
        let n = 128;
        let topic = TopicId::new(5);
        let members: Vec<NodeId> = (0..10).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members.clone());
        let mut s = build(n, groups);
        for m in &members {
            s.schedule_command(SimTime::ZERO, *m, DksCmd::SubscribeTopic(topic));
        }
        for k in 0..20u32 {
            s.schedule_command(
                SimTime::from_millis(100 + 20 * k as u64),
                NodeId::new(100),
                DksCmd::Publish(Event::bare(EventId::new(100, k), topic)),
            );
        }
        s.run_until(SimTime::from_secs(10));
        let uninterested_workers = s
            .nodes()
            .filter(|(id, p)| {
                !members.contains(id)
                    && id.as_u32() != 100
                    && p.ledger().totals().forwarded_msgs > 0
            })
            .count();
        assert!(
            uninterested_workers > 0,
            "index-route relays are conscripted — the paper's critique of DKS"
        );
    }

    #[test]
    fn non_members_never_deliver() {
        let n = 32;
        let topic = TopicId::new(1);
        let members: Vec<NodeId> = (0..8).map(NodeId::new).collect();
        let mut groups = GroupTable::new();
        groups.insert(topic, members.clone());
        let mut s = build(n, groups);
        for m in &members {
            s.schedule_command(SimTime::ZERO, *m, DksCmd::SubscribeTopic(topic));
        }
        let e = Event::bare(EventId::new(20, 1), topic);
        s.schedule_command(
            SimTime::from_millis(50),
            NodeId::new(20),
            DksCmd::Publish(e.clone()),
        );
        s.run_until(SimTime::from_secs(5));
        for (id, node) in s.nodes() {
            if !members.contains(&id) {
                assert!(node.deliveries().is_empty(), "{id}");
            }
        }
    }

    #[test]
    fn empty_group_event_dies_at_index() {
        let n = 16;
        let mut s = build(n, GroupTable::new());
        s.schedule_command(
            SimTime::from_millis(50),
            NodeId::new(3),
            DksCmd::Publish(Event::bare(EventId::new(3, 1), TopicId::new(7))),
        );
        s.run_until(SimTime::from_secs(2));
        let total: usize = s.nodes().map(|(_, p)| p.deliveries().len()).sum();
        assert_eq!(total, 0);
    }
}
