//! Declarative scenario files: a TOML format for [`ScenarioSpec`].
//!
//! Scenarios are *data, not code*: everything a [`ScenarioSpec`] can
//! express — architecture, population, shards, placement, adaptive
//! window, interest profile, publication plan (flash crowd included),
//! churn plan, latency/loss model, scheduled faults (partitions, one-way
//! link failures, delay spikes), time-varying connectivity (`[mobility]`
//! piecewise traces), SWIM failure detection and telemetry —
//! is writable as a small TOML file, parsed by [`parse_scenario`] and
//! serialized back by [`to_toml`]. The curated library under `scenarios/` in the repository
//! root is built entirely from this format, and the `fed-experiments`
//! runner executes any file via `run <path.toml>` / `run @name`.
//!
//! The full key-by-key reference with defaults and units lives in
//! `docs/SCENARIOS.md`; the grammar below is the contract.
//!
//! ## Format
//!
//! A deliberately small TOML subset, parsed without external crates:
//!
//! * `[section]` and `[section.subsection]` headers (each at most once);
//! * `key = value` pairs where a value is a `"string"`, an integer, a
//!   float, or `true`/`false`;
//! * `#` comments (full-line or trailing) and blank lines.
//!
//! Durations and instants are strings with an explicit integer count and
//! unit: `"250us"`, `"10ms"`, `"2s"`. Anything else — `"10sec"`, a bare
//! `10`, a negative count — is rejected.
//!
//! ## Strictness
//!
//! Parsing is strict by design: unknown sections and unknown keys are
//! errors (catching typos like `ratez`), every value is range-checked
//! (`shards` ∈ 1..=512, positive rates, fractions in `[0, 1]`, …) and
//! every error carries the line number and the offending key. A file
//! that parses is guaranteed to materialize: the checks here are a
//! superset of what [`ScenarioSpec::materialize`] validates.
//!
//! ## Round trip
//!
//! [`to_toml`] ∘ [`parse_scenario`] is the identity on [`ScenarioSpec`]
//! (property-tested in `tests/scenario_file_props.rs`): floats are
//! emitted in Rust's shortest round-trip notation, durations in the
//! coarsest exact unit. The one unrepresentable corner is a
//! [`NetworkModel`] carrying an active *dynamic* partition (the
//! `groups` device experiments install mid-run) — for which [`to_toml`]
//! returns an error. *Scheduled* partitions are different: they are
//! plain data with a start and a heal time, and live in the
//! `[faults.partition]` section.

use crate::churn::ChurnPlan;
use crate::interest::Appetite;
use crate::pubs::{FlashCrowd, PubPlan};
use crate::scenario::{Architecture, Placement, ScenarioSpec};
use fed_membership::swim::SwimConfig;
use fed_profile::ProfileSpec;
use fed_sim::network::{
    DelayFault, FaultSchedule, LatencyModel, MobilitySegment, MobilityTrace, NetworkModel,
    OnewayFault, PartitionFault,
};
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::TelemetrySpec;
use fed_trace::TraceSpec;
use std::collections::BTreeMap;
use std::fmt;

/// Highest shard count a scenario file may request.
///
/// The engine itself clamps shards to the population size; this bound
/// exists so a typo (`shards = 40000`) fails loudly instead of spawning
/// thousands of idle worker threads.
pub const MAX_SHARDS: usize = 512;

/// Highest population a scenario file may request.
pub const MAX_NODES: usize = 10_000_000;

/// An error from parsing, validating or serializing a scenario file.
///
/// Carries the 1-based line number when the error is attributable to a
/// specific line of the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioFileError {
    /// 1-based line of the offending input, when known.
    pub line: Option<usize>,
    /// Human-readable description, including the key path involved.
    pub message: String,
}

impl ScenarioFileError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        ScenarioFileError {
            line: Some(line),
            message: message.into(),
        }
    }

    fn global(message: impl Into<String>) -> Self {
        ScenarioFileError {
            line: None,
            message: message.into(),
        }
    }
}

impl fmt::Display for ScenarioFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(line) => write!(f, "line {line}: {}", self.message),
            None => f.write_str(&self.message),
        }
    }
}

impl std::error::Error for ScenarioFileError {}

type Result<T> = std::result::Result<T, ScenarioFileError>;

// ---------------------------------------------------------------------------
// Lexing: lines → sections of (key, value) pairs
// ---------------------------------------------------------------------------

/// One parsed TOML value.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    Int(i128),
    Float(f64),
    Bool(bool),
}

impl Value {
    fn type_name(&self) -> &'static str {
        match self {
            Value::Str(_) => "a string",
            Value::Int(_) => "an integer",
            Value::Float(_) => "a float",
            Value::Bool(_) => "a boolean",
        }
    }
}

/// Strips a trailing `#` comment that is not inside a string literal.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        match c {
            '\\' if in_str && !escaped => escaped = true,
            '"' if !escaped => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => escaped = false,
        }
    }
    line
}

fn valid_key(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

fn parse_string(raw: &str, line: usize) -> Result<String> {
    let inner = &raw[1..raw.len() - 1];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '"' {
            return Err(ScenarioFileError::at(
                line,
                "unescaped quote inside string".to_string(),
            ));
        }
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('t') => out.push('\t'),
            other => {
                return Err(ScenarioFileError::at(
                    line,
                    format!("unsupported string escape {other:?}"),
                ))
            }
        }
    }
    Ok(out)
}

fn parse_value(raw: &str, line: usize) -> Result<Value> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ScenarioFileError::at(line, "missing value after `=`"));
    }
    if raw.starts_with('"') {
        if raw.len() < 2 || !raw.ends_with('"') {
            return Err(ScenarioFileError::at(line, "unterminated string"));
        }
        return parse_string(raw, line).map(Value::Str);
    }
    match raw {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    let body = raw.strip_prefix(['+', '-']).unwrap_or(raw);
    if body.is_empty() || !body.starts_with(|c: char| c.is_ascii_digit() || c == '.') {
        return Err(ScenarioFileError::at(
            line,
            format!("unrecognized value {raw:?} (expected a string, number or boolean)"),
        ));
    }
    // Underscore digit grouping is allowed in both integers and floats
    // (`100_000`, `1_000.5`), as in full TOML.
    let digits = raw.replace('_', "");
    let looks_float = raw.contains(['.', 'e', 'E']);
    if !looks_float {
        return match digits.parse::<i128>() {
            Ok(v) => Ok(Value::Int(v)),
            Err(_) => Err(ScenarioFileError::at(
                line,
                format!("integer {raw:?} is out of range"),
            )),
        };
    }
    match digits.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Value::Float(v)),
        Ok(_) => Err(ScenarioFileError::at(
            line,
            format!("float {raw:?} must be finite"),
        )),
        Err(_) => Err(ScenarioFileError::at(
            line,
            format!("invalid float {raw:?}"),
        )),
    }
}

/// A lexed document: section path → (header line, key → (value, line)).
struct Document {
    sections: BTreeMap<String, Section>,
}

struct Section {
    header_line: usize,
    entries: BTreeMap<String, (Value, usize)>,
}

fn lex(input: &str) -> Result<Document> {
    let mut sections: BTreeMap<String, Section> = BTreeMap::new();
    let mut current: Option<String> = None;
    for (idx, raw_line) in input.lines().enumerate() {
        let line = idx + 1;
        let text = strip_comment(raw_line).trim();
        if text.is_empty() {
            continue;
        }
        if let Some(rest) = text.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(ScenarioFileError::at(line, "unterminated section header"));
            };
            let name = name.trim();
            if name.is_empty() || !name.split('.').all(valid_key) {
                return Err(ScenarioFileError::at(
                    line,
                    format!("invalid section name [{name}]"),
                ));
            }
            if sections.contains_key(name) {
                return Err(ScenarioFileError::at(
                    line,
                    format!("duplicate section [{name}]"),
                ));
            }
            sections.insert(
                name.to_string(),
                Section {
                    header_line: line,
                    entries: BTreeMap::new(),
                },
            );
            current = Some(name.to_string());
            continue;
        }
        let Some((key, value)) = text.split_once('=') else {
            return Err(ScenarioFileError::at(
                line,
                format!("expected `key = value` or `[section]`, got {text:?}"),
            ));
        };
        let key = key.trim();
        if !valid_key(key) {
            return Err(ScenarioFileError::at(line, format!("invalid key {key:?}")));
        }
        let Some(section) = current.as_ref() else {
            return Err(ScenarioFileError::at(
                line,
                format!("key {key:?} before any [section] header"),
            ));
        };
        let value = parse_value(value, line)?;
        let entries = &mut sections.get_mut(section).unwrap().entries;
        if entries.insert(key.to_string(), (value, line)).is_some() {
            return Err(ScenarioFileError::at(
                line,
                format!("duplicate key {key:?} in [{section}]"),
            ));
        }
    }
    Ok(Document { sections })
}

// ---------------------------------------------------------------------------
// Typed access with strict leftover detection
// ---------------------------------------------------------------------------

/// Typed view over one lexed section; every accessor removes the key, and
/// [`Reader::finish`] rejects whatever was not consumed.
struct Reader {
    path: String,
    header_line: usize,
    entries: BTreeMap<String, (Value, usize)>,
    valid_keys: &'static [&'static str],
}

impl Reader {
    fn new(path: &str, section: Section, valid_keys: &'static [&'static str]) -> Result<Reader> {
        // Reject typos up front so "unknown key" wins over "missing
        // required key" when both apply.
        for (key, (_, line)) in &section.entries {
            if !valid_keys.contains(&key.as_str()) {
                return Err(ScenarioFileError::at(
                    *line,
                    format!(
                        "unknown key `{key}` in [{path}] (valid keys: {})",
                        valid_keys.join(", ")
                    ),
                ));
            }
        }
        Ok(Reader {
            path: path.to_string(),
            header_line: section.header_line,
            entries: section.entries,
            valid_keys,
        })
    }

    fn key_err(&self, key: &str, line: usize, what: String) -> ScenarioFileError {
        ScenarioFileError::at(line, format!("[{}] {key}: {what}", self.path))
    }

    fn take(&mut self, key: &str) -> Option<(Value, usize)> {
        self.entries.remove(key)
    }

    fn req(&mut self, key: &str) -> Result<(Value, usize)> {
        self.take(key).ok_or_else(|| {
            ScenarioFileError::at(
                self.header_line,
                format!("[{}] is missing the required key `{key}`", self.path),
            )
        })
    }

    fn str_of(&self, key: &str, v: Value, line: usize) -> Result<(String, usize)> {
        match v {
            Value::Str(s) => Ok((s, line)),
            other => Err(self.key_err(
                key,
                line,
                format!("expected a string, got {}", other.type_name()),
            )),
        }
    }

    fn req_str(&mut self, key: &str) -> Result<(String, usize)> {
        let (v, line) = self.req(key)?;
        self.str_of(key, v, line)
    }

    fn opt_str(&mut self, key: &str) -> Result<Option<(String, usize)>> {
        match self.take(key) {
            None => Ok(None),
            Some((v, line)) => self.str_of(key, v, line).map(Some),
        }
    }

    fn int_of(&self, key: &str, v: Value, line: usize) -> Result<(i128, usize)> {
        match v {
            Value::Int(i) => Ok((i, line)),
            other => Err(self.key_err(
                key,
                line,
                format!("expected an integer, got {}", other.type_name()),
            )),
        }
    }

    fn usize_in(
        &self,
        key: &str,
        v: Value,
        line: usize,
        range: std::ops::RangeInclusive<usize>,
    ) -> Result<usize> {
        let (i, line) = self.int_of(key, v, line)?;
        if i < *range.start() as i128 || i > *range.end() as i128 {
            return Err(self.key_err(
                key,
                line,
                format!(
                    "{i} is out of range (expected {}..={})",
                    range.start(),
                    range.end()
                ),
            ));
        }
        Ok(i as usize)
    }

    fn req_usize(&mut self, key: &str, range: std::ops::RangeInclusive<usize>) -> Result<usize> {
        let (v, line) = self.req(key)?;
        self.usize_in(key, v, line, range)
    }

    fn opt_usize(
        &mut self,
        key: &str,
        range: std::ops::RangeInclusive<usize>,
        default: usize,
    ) -> Result<usize> {
        match self.take(key) {
            None => Ok(default),
            Some((v, line)) => self.usize_in(key, v, line, range),
        }
    }

    fn req_u64(&mut self, key: &str) -> Result<u64> {
        let (v, line) = self.req(key)?;
        self.u64_of(key, v, line)
    }

    fn opt_u64(&mut self, key: &str, default: u64) -> Result<u64> {
        match self.take(key) {
            None => Ok(default),
            Some((v, line)) => self.u64_of(key, v, line),
        }
    }

    fn u64_of(&self, key: &str, v: Value, line: usize) -> Result<u64> {
        let (i, line) = self.int_of(key, v, line)?;
        if i < 0 || i > u64::MAX as i128 {
            return Err(self.key_err(
                key,
                line,
                format!("{i} does not fit an unsigned 64-bit value"),
            ));
        }
        Ok(i as u64)
    }

    fn float_of(&self, key: &str, v: Value, line: usize) -> Result<(f64, usize)> {
        match v {
            Value::Float(x) => Ok((x, line)),
            // Integer literals are fine where a float is expected.
            Value::Int(i) => Ok((i as f64, line)),
            other => Err(self.key_err(
                key,
                line,
                format!("expected a number, got {}", other.type_name()),
            )),
        }
    }

    fn float_checked(&self, key: &str, v: Value, line: usize, check: FloatCheck) -> Result<f64> {
        let (x, line) = self.float_of(key, v, line)?;
        match check {
            // Values are finite by lexing, so plain comparisons suffice.
            FloatCheck::Positive if x <= 0.0 => {
                Err(self.key_err(key, line, format!("{x} must be strictly positive")))
            }
            FloatCheck::NonNegative if x < 0.0 => {
                Err(self.key_err(key, line, format!("{x} must be non-negative")))
            }
            FloatCheck::Fraction if !(0.0..=1.0).contains(&x) => {
                Err(self.key_err(key, line, format!("{x} must be a fraction in [0, 1]")))
            }
            FloatCheck::LossProbability if !(0.0..1.0).contains(&x) => Err(self.key_err(
                key,
                line,
                format!("{x} must be a loss probability in [0, 1)"),
            )),
            _ => Ok(x),
        }
    }

    fn req_float(&mut self, key: &str, check: FloatCheck) -> Result<f64> {
        let (v, line) = self.req(key)?;
        self.float_checked(key, v, line, check)
    }

    fn opt_float(&mut self, key: &str, check: FloatCheck, default: f64) -> Result<f64> {
        match self.take(key) {
            None => Ok(default),
            Some((v, line)) => self.float_checked(key, v, line, check),
        }
    }

    fn opt_bool(&mut self, key: &str, default: bool) -> Result<bool> {
        match self.take(key) {
            None => Ok(default),
            Some((Value::Bool(b), _)) => Ok(b),
            Some((other, line)) => Err(self.key_err(
                key,
                line,
                format!("expected true or false, got {}", other.type_name()),
            )),
        }
    }

    fn duration_of(&self, key: &str, v: Value, line: usize) -> Result<u64> {
        let (s, line) = self.str_of(key, v, line)?;
        parse_duration_str(&s).ok_or_else(|| {
            self.key_err(
                key,
                line,
                format!("bad duration {s:?} (expected an integer count with unit, e.g. \"250us\", \"10ms\", \"2s\")"),
            )
        })
    }

    fn req_duration(&mut self, key: &str) -> Result<SimDuration> {
        let (v, line) = self.req(key)?;
        Ok(SimDuration::from_micros(self.duration_of(key, v, line)?))
    }

    fn opt_duration(&mut self, key: &str, default: SimDuration) -> Result<SimDuration> {
        match self.take(key) {
            None => Ok(default),
            Some((v, line)) => Ok(SimDuration::from_micros(self.duration_of(key, v, line)?)),
        }
    }

    fn req_instant(&mut self, key: &str) -> Result<SimTime> {
        let (v, line) = self.req(key)?;
        Ok(SimTime::from_micros(self.duration_of(key, v, line)?))
    }

    fn opt_instant(&mut self, key: &str, default: SimTime) -> Result<SimTime> {
        match self.take(key) {
            None => Ok(default),
            Some((v, line)) => Ok(SimTime::from_micros(self.duration_of(key, v, line)?)),
        }
    }

    fn finish(self) -> Result<()> {
        if let Some((key, (_, line))) = self.entries.into_iter().next() {
            return Err(ScenarioFileError::at(
                line,
                format!(
                    "key `{key}` in [{}] does not apply to this configuration \
                     (all keys: {})",
                    self.path,
                    self.valid_keys.join(", ")
                ),
            ));
        }
        Ok(())
    }
}

#[derive(Clone, Copy)]
enum FloatCheck {
    Positive,
    NonNegative,
    Fraction,
    LossProbability,
}

/// Parses `"<digits><unit>"` with unit `us`, `ms` or `s` into microseconds.
fn parse_duration_str(s: &str) -> Option<u64> {
    let (count, factor) = if let Some(c) = s.strip_suffix("us") {
        (c, 1u64)
    } else if let Some(c) = s.strip_suffix("ms") {
        (c, 1_000)
    } else if let Some(c) = s.strip_suffix('s') {
        (c, 1_000_000)
    } else {
        return None;
    };
    if count.is_empty() || !count.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    count.parse::<u64>().ok()?.checked_mul(factor)
}

/// Formats microseconds in the coarsest exact unit (`us`/`ms`/`s`).
fn fmt_duration_us(us: u64) -> String {
    if us.is_multiple_of(1_000_000) {
        format!("\"{}s\"", us / 1_000_000)
    } else if us.is_multiple_of(1_000) {
        format!("\"{}ms\"", us / 1_000)
    } else {
        format!("\"{us}us\"")
    }
}

fn fmt_dur(d: SimDuration) -> String {
    fmt_duration_us(d.as_micros())
}

fn fmt_time(t: SimTime) -> String {
    fmt_duration_us(t.as_micros())
}

/// Shortest float notation that round-trips and always re-lexes as a
/// float or integer literal.
fn fmt_float(x: f64) -> String {
    format!("{x:?}")
}

// ---------------------------------------------------------------------------
// Parsing: document → ScenarioSpec
// ---------------------------------------------------------------------------

/// A parsed scenario file: the spec plus the file's own metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// Optional `name` from `[scenario]` (the library files set it to the
    /// file stem).
    pub name: Option<String>,
    /// Optional one-line `summary` from `[scenario]`.
    pub summary: Option<String>,
    /// The scenario itself.
    pub spec: ScenarioSpec,
}

const SCENARIO_KEYS: &[&str] = &[
    "name",
    "summary",
    "arch",
    "nodes",
    "seed",
    "shards",
    "placement",
    "adaptive_window",
];
const TOPICS_KEYS: &[&str] = &["count", "zipf_s"];
const INTEREST_KEYS: &[&str] = &[
    "appetite",
    "topics_per_node",
    "lo",
    "hi",
    "heavy_fraction",
    "heavy",
    "light",
];
const PUBLISH_KEYS: &[&str] = &[
    "rate_per_sec",
    "duration",
    "warmup",
    "topic_zipf_s",
    "payload_bytes",
];
const FLASH_KEYS: &[&str] = &["at", "topic_zipf_s", "rate_factor"];
const CHURN_KEYS: &[&str] = &[
    "mean_session_secs",
    "mean_downtime_secs",
    "churning_fraction",
    "duration",
    "warmup",
];
const NETWORK_KEYS: &[&str] = &[
    "latency",
    "delay",
    "lo",
    "hi",
    "median_ms",
    "sigma",
    "floor",
    "loss",
];
const TELEMETRY_KEYS: &[&str] = &[
    "window",
    "load_hi",
    "load_buckets",
    "latency_hi_ms",
    "latency_buckets",
];
const PROFILE_KEYS: &[&str] = &["trace"];
const TRACE_KEYS: &[&str] = &["sample_rate", "salt", "export"];
const FAULT_PARTITION_KEYS: &[&str] = &["at", "heal", "split"];
const FAULT_ONEWAY_KEYS: &[&str] = &["at", "until", "split"];
const FAULT_DELAY_KEYS: &[&str] = &["at", "until", "extra"];
const MOBILITY_KEYS: &[&str] = &["split", "period"];
const MOBILITY_SEGMENT_KEYS: &[&str] = &["at", "extra", "disconnected"];
const MEMBERSHIP_KEYS: &[&str] = &[
    "probe_period",
    "probe_timeout",
    "ping_req_fanout",
    "suspect_timeout",
    "max_piggyback",
    "gossip_multiplier",
];

/// All sections a scenario file may contain.
const SECTIONS: &[&str] = &[
    "scenario",
    "topics",
    "interest",
    "publish",
    "publish.flash",
    "churn",
    "network",
    "faults.partition",
    "faults.oneway",
    "faults.delay",
    "mobility",
    "mobility.seg<k>",
    "membership",
    "telemetry",
    "profile",
    "trace",
];

/// Parses a complete scenario file.
///
/// # Errors
///
/// Returns [`ScenarioFileError`] — with the line number and key path —
/// for syntax errors, unknown sections or keys, type mismatches, bad
/// duration units and out-of-range values.
pub fn parse_scenario(input: &str) -> Result<ScenarioFile> {
    let mut doc = lex(input)?;

    let mut section = |name: &str, keys: &'static [&'static str]| -> Result<Option<Reader>> {
        doc.sections
            .remove(name)
            .map(|s| Reader::new(name, s, keys))
            .transpose()
    };

    // [scenario] — required.
    let Some(mut scenario) = section("scenario", SCENARIO_KEYS)? else {
        return Err(ScenarioFileError::global(
            "missing required section [scenario]",
        ));
    };
    let name = scenario.opt_str("name")?.map(|(s, _)| s);
    let summary = scenario.opt_str("summary")?.map(|(s, _)| s);
    let (arch_name, arch_line) = scenario.req_str("arch")?;
    let Some(arch) = Architecture::parse(&arch_name) else {
        let valid: Vec<&str> = Architecture::ALL.iter().map(|a| a.name()).collect();
        return Err(ScenarioFileError::at(
            arch_line,
            format!(
                "[scenario] arch: unknown architecture {arch_name:?} (valid: {})",
                valid.join(", ")
            ),
        ));
    };
    let n = scenario.req_usize("nodes", 1..=MAX_NODES)?;
    let seed = scenario.req_u64("seed")?;
    let shards = scenario.opt_usize("shards", 1..=MAX_SHARDS, 1)?;
    let placement = match scenario.opt_str("placement")? {
        None => Placement::RoundRobin,
        Some((name, line)) => Placement::parse(&name).ok_or_else(|| {
            let valid: Vec<&str> = Placement::ALL.iter().map(|p| p.name()).collect();
            ScenarioFileError::at(
                line,
                format!(
                    "[scenario] placement: unknown policy {name:?} (valid: {})",
                    valid.join(", ")
                ),
            )
        })?,
    };
    let adaptive_window = scenario.opt_bool("adaptive_window", true)?;
    scenario.finish()?;

    // [topics] — required.
    let Some(mut topics) = section("topics", TOPICS_KEYS)? else {
        return Err(ScenarioFileError::global(
            "missing required section [topics]",
        ));
    };
    let num_topics = topics.req_usize("count", 1..=1_000_000)?;
    let zipf_s = topics.opt_float("zipf_s", FloatCheck::NonNegative, 1.0)?;
    topics.finish()?;

    // [interest] — required.
    let Some(mut interest) = section("interest", INTEREST_KEYS)? else {
        return Err(ScenarioFileError::global(
            "missing required section [interest]",
        ));
    };
    let (appetite_kind, appetite_line) = interest.req_str("appetite")?;
    let appetite = match appetite_kind.as_str() {
        "fixed" => Appetite::Fixed(interest.req_usize("topics_per_node", 0..=1_000_000)?),
        "uniform" => {
            let lo = interest.req_usize("lo", 0..=1_000_000)?;
            let hi = interest.req_usize("hi", 0..=1_000_000)?;
            if lo > hi {
                return Err(ScenarioFileError::at(
                    appetite_line,
                    format!("[interest] uniform appetite needs lo <= hi (got {lo} > {hi})"),
                ));
            }
            Appetite::Uniform { lo, hi }
        }
        "bimodal" => Appetite::Bimodal {
            heavy_fraction: interest.req_float("heavy_fraction", FloatCheck::Fraction)?,
            heavy: interest.req_usize("heavy", 0..=1_000_000)?,
            light: interest.req_usize("light", 0..=1_000_000)?,
        },
        other => {
            return Err(ScenarioFileError::at(
                appetite_line,
                format!(
                    "[interest] appetite: unknown kind {other:?} (valid: fixed, uniform, bimodal)"
                ),
            ))
        }
    };
    interest.finish()?;

    // [publish] — required; [publish.flash] — optional.
    let Some(mut publish) = section("publish", PUBLISH_KEYS)? else {
        return Err(ScenarioFileError::global(
            "missing required section [publish]",
        ));
    };
    let publish_header = publish.header_line;
    let rate_per_sec = publish.req_float("rate_per_sec", FloatCheck::Positive)?;
    let duration = publish.req_instant("duration")?;
    let warmup = publish.opt_instant("warmup", SimTime::from_secs(1))?;
    let topic_zipf_s = publish.opt_float("topic_zipf_s", FloatCheck::NonNegative, 1.0)?;
    let payload_bytes = publish.opt_usize("payload_bytes", 0..=1 << 20, 64)?;
    publish.finish()?;
    let flash = match section("publish.flash", FLASH_KEYS)? {
        None => None,
        Some(mut flash) => {
            let f = FlashCrowd {
                at: flash.req_instant("at")?,
                topic_zipf_s: flash.req_float("topic_zipf_s", FloatCheck::NonNegative)?,
                rate_factor: flash.opt_float("rate_factor", FloatCheck::Positive, 1.0)?,
            };
            flash.finish()?;
            Some(f)
        }
    };
    // The run horizon is `warmup + duration + drain` on the u64
    // microsecond clock; reject files whose publication phase would
    // overflow it so "a file that parses is guaranteed to run" holds.
    if warmup
        .as_micros()
        .checked_add(duration.as_micros())
        .and_then(|v| v.checked_add(4_000_000))
        .is_none()
    {
        return Err(ScenarioFileError::at(
            publish_header,
            "[publish] warmup + duration overflows the simulation clock".to_string(),
        ));
    }
    let plan = PubPlan {
        rate_per_sec,
        duration,
        topic_zipf_s,
        payload_bytes,
        warmup,
        flash,
    };

    // [churn] — optional; its presence enables churn.
    let churn = match section("churn", CHURN_KEYS)? {
        None => None,
        Some(mut churn) => {
            let d = ChurnPlan::default();
            let plan = ChurnPlan {
                mean_session_secs: churn.opt_float(
                    "mean_session_secs",
                    FloatCheck::Positive,
                    d.mean_session_secs,
                )?,
                mean_downtime_secs: churn.opt_float(
                    "mean_downtime_secs",
                    FloatCheck::Positive,
                    d.mean_downtime_secs,
                )?,
                churning_fraction: churn.opt_float(
                    "churning_fraction",
                    FloatCheck::Fraction,
                    d.churning_fraction,
                )?,
                duration: churn.opt_instant("duration", d.duration)?,
                warmup: churn.opt_instant("warmup", d.warmup)?,
            };
            churn.finish()?;
            Some(plan)
        }
    };

    // [network] — optional; defaults to the standard reliable 10 ms net.
    let net = match section("network", NETWORK_KEYS)? {
        None => NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10))),
        Some(mut network) => {
            let (kind, kind_line) = network.req_str("latency")?;
            let latency = match kind.as_str() {
                "constant" => LatencyModel::Constant(network.req_duration("delay")?),
                "uniform" => {
                    let lo = network.req_duration("lo")?;
                    let hi = network.req_duration("hi")?;
                    if lo > hi {
                        return Err(ScenarioFileError::at(
                            kind_line,
                            format!(
                                "[network] uniform latency needs lo <= hi (got {}us > {}us)",
                                lo.as_micros(),
                                hi.as_micros()
                            ),
                        ));
                    }
                    LatencyModel::Uniform { lo, hi }
                }
                "lognormal" => LatencyModel::LogNormalMs {
                    median_ms: network.req_float("median_ms", FloatCheck::Positive)?,
                    sigma: network.req_float("sigma", FloatCheck::NonNegative)?,
                    floor: network.opt_duration("floor", SimDuration::ZERO)?,
                },
                other => {
                    return Err(ScenarioFileError::at(
                        kind_line,
                        format!(
                            "[network] latency: unknown model {other:?} (valid: constant, uniform, lognormal)"
                        ),
                    ))
                }
            };
            let loss = network.opt_float("loss", FloatCheck::LossProbability, 0.0)?;
            network.finish()?;
            if loss > 0.0 {
                NetworkModel::lossy(latency, loss)
            } else {
                NetworkModel::reliable(latency)
            }
        }
    };

    // [faults.*] — optional scheduled faults, applied by the network
    // model as pure functions of (now, from, to). Each subsection is a
    // single fault window; the `split` boundary partitions node ids
    // (`< split` on one side, the rest on the other).
    let fault_partition = match section("faults.partition", FAULT_PARTITION_KEYS)? {
        None => None,
        Some(mut partition) => {
            let header = partition.header_line;
            let f = PartitionFault {
                at: partition.req_instant("at")?,
                heal: partition.req_instant("heal")?,
                split: partition.req_usize("split", 0..=MAX_NODES)? as u32,
            };
            partition.finish()?;
            if f.at >= f.heal {
                return Err(ScenarioFileError::at(
                    header,
                    format!(
                        "[faults.partition] needs at < heal (got {}us >= {}us)",
                        f.at.as_micros(),
                        f.heal.as_micros()
                    ),
                ));
            }
            Some(f)
        }
    };
    let fault_oneway = match section("faults.oneway", FAULT_ONEWAY_KEYS)? {
        None => None,
        Some(mut oneway) => {
            let header = oneway.header_line;
            let f = OnewayFault {
                at: oneway.req_instant("at")?,
                until: oneway.req_instant("until")?,
                split: oneway.req_usize("split", 0..=MAX_NODES)? as u32,
            };
            oneway.finish()?;
            if f.at >= f.until {
                return Err(ScenarioFileError::at(
                    header,
                    format!(
                        "[faults.oneway] needs at < until (got {}us >= {}us)",
                        f.at.as_micros(),
                        f.until.as_micros()
                    ),
                ));
            }
            Some(f)
        }
    };
    let fault_delay = match section("faults.delay", FAULT_DELAY_KEYS)? {
        None => None,
        Some(mut delay) => {
            let header = delay.header_line;
            let f = DelayFault {
                at: delay.req_instant("at")?,
                until: delay.req_instant("until")?,
                extra: delay.req_duration("extra")?,
            };
            delay.finish()?;
            if f.at >= f.until {
                return Err(ScenarioFileError::at(
                    header,
                    format!(
                        "[faults.delay] needs at < until (got {}us >= {}us)",
                        f.at.as_micros(),
                        f.until.as_micros()
                    ),
                ));
            }
            Some(f)
        }
    };
    let faults = FaultSchedule {
        partition: fault_partition,
        oneway: fault_oneway,
        delay: fault_delay,
    };

    // [mobility] + [mobility.seg0], [mobility.seg1], … — optional
    // time-varying connectivity: a piecewise cross-split trace, evaluated
    // by the network model as a pure function of (now, from, to).
    // Segments are numbered subsections because the format has no
    // array-of-tables.
    let mobility = match section("mobility", MOBILITY_KEYS)? {
        None => None,
        Some(mut mobility) => {
            let header = mobility.header_line;
            let split = mobility.req_usize("split", 0..=MAX_NODES)? as u32;
            let period = match mobility.take("period") {
                None => None,
                Some((v, line)) => Some(SimDuration::from_micros(
                    mobility.duration_of("period", v, line)?,
                )),
            };
            mobility.finish()?;
            let mut segments = Vec::new();
            while let Some(mut seg) = section(
                &format!("mobility.seg{}", segments.len()),
                MOBILITY_SEGMENT_KEYS,
            )? {
                let s = MobilitySegment {
                    at: seg.req_instant("at")?,
                    extra: seg.opt_duration("extra", SimDuration::ZERO)?,
                    disconnected: seg.opt_bool("disconnected", false)?,
                };
                seg.finish()?;
                segments.push(s);
            }
            let trace = MobilityTrace {
                split,
                period,
                segments,
            };
            trace
                .validate()
                .map_err(|e| ScenarioFileError::at(header, format!("[mobility] {e}")))?;
            Some(trace)
        }
    };

    // [membership] — optional; its presence enables the SWIM failure
    // detector on gossip-based architectures. Every key defaults to
    // [`SwimConfig::standard`].
    let membership = match section("membership", MEMBERSHIP_KEYS)? {
        None => None,
        Some(mut membership) => {
            let header = membership.header_line;
            let d = SwimConfig::standard();
            let cfg = SwimConfig {
                probe_period: membership.opt_duration("probe_period", d.probe_period)?,
                probe_timeout: membership.opt_duration("probe_timeout", d.probe_timeout)?,
                ping_req_fanout: membership.opt_usize(
                    "ping_req_fanout",
                    0..=1_000,
                    d.ping_req_fanout,
                )?,
                suspect_timeout: membership.opt_duration("suspect_timeout", d.suspect_timeout)?,
                max_piggyback: membership.opt_usize(
                    "max_piggyback",
                    1..=10_000,
                    d.max_piggyback,
                )?,
                gossip_multiplier: membership.opt_usize(
                    "gossip_multiplier",
                    1..=1_000,
                    d.gossip_multiplier as usize,
                )? as u32,
            };
            membership.finish()?;
            // A zero probe period would re-arm the protocol tick at the
            // same instant forever; reject it so "a file that parses is
            // guaranteed to run" holds.
            if cfg.probe_period == SimDuration::ZERO {
                return Err(ScenarioFileError::at(
                    header,
                    "[membership] probe_period must be positive".to_string(),
                ));
            }
            Some(cfg)
        }
    };

    // [telemetry] — optional; its presence enables the streaming series.
    let telemetry = match section("telemetry", TELEMETRY_KEYS)? {
        None => None,
        Some(mut telemetry) => {
            let d = TelemetrySpec::default();
            let window = telemetry.opt_duration("window", d.window)?;
            let spec = TelemetrySpec {
                window,
                load_hi: telemetry.opt_float("load_hi", FloatCheck::Positive, d.load_hi)?,
                load_buckets: telemetry.opt_usize("load_buckets", 1..=100_000, d.load_buckets)?,
                latency_hi_ms: telemetry.opt_float(
                    "latency_hi_ms",
                    FloatCheck::Positive,
                    d.latency_hi_ms,
                )?,
                latency_buckets: telemetry.opt_usize(
                    "latency_buckets",
                    1..=100_000,
                    d.latency_buckets,
                )?,
            };
            let header = telemetry.header_line;
            telemetry.finish()?;
            TelemetrySpec::checked(spec)
                .map_err(|e| ScenarioFileError::at(header, format!("[telemetry] {e}")))?;
            Some(spec)
        }
    };

    // [profile] — optional; its presence (even empty) enables scheduler
    // profiling.
    let profile = match section("profile", PROFILE_KEYS)? {
        None => None,
        Some(mut profile) => {
            let spec = ProfileSpec {
                trace: profile.opt_str("trace")?.map(|(s, _)| s),
            };
            let header = profile.header_line;
            profile.finish()?;
            ProfileSpec::checked(spec.clone())
                .map_err(|e| ScenarioFileError::at(header, format!("[profile] {e}")))?;
            Some(spec)
        }
    };

    // [trace] — optional; its presence (even empty) enables per-event
    // dissemination tracing.
    let trace = match section("trace", TRACE_KEYS)? {
        None => None,
        Some(mut trace) => {
            let d = TraceSpec::default();
            let spec = TraceSpec {
                sample_rate: trace.opt_float("sample_rate", FloatCheck::Fraction, d.sample_rate)?,
                salt: trace.opt_u64("salt", d.salt)?,
                export: trace.opt_str("export")?.map(|(s, _)| s),
            };
            let header = trace.header_line;
            trace.finish()?;
            TraceSpec::checked(spec.clone())
                .map_err(|e| ScenarioFileError::at(header, format!("[trace] {e}")))?;
            Some(spec)
        }
    };

    // Leftover [mobility.*] sections get a targeted diagnosis: a segment
    // without its parent [mobility], a gap in the numbering, or a typo'd
    // segment name.
    if let Some((path, sec)) = doc
        .sections
        .iter()
        .find(|(p, _)| p.starts_with("mobility."))
    {
        let hint = match &mobility {
            None => "segments need a parent [mobility] section".to_string(),
            Some(m) => format!(
                "segments must be numbered contiguously from [mobility.seg0] \
                 (next expected: [mobility.seg{}])",
                m.segments.len()
            ),
        };
        return Err(ScenarioFileError::at(
            sec.header_line,
            format!("unexpected section [{path}]: {hint}"),
        ));
    }

    // Anything left over is an unknown section.
    if let Some((path, sec)) = doc.sections.into_iter().next() {
        return Err(ScenarioFileError::at(
            sec.header_line,
            format!(
                "unknown section [{path}] (valid sections: {})",
                SECTIONS.join(", ")
            ),
        ));
    }

    Ok(ScenarioFile {
        name,
        summary,
        spec: ScenarioSpec {
            arch,
            n,
            shards,
            placement,
            adaptive_window,
            num_topics,
            zipf_s,
            appetite,
            plan,
            churn,
            telemetry,
            profile,
            trace,
            net,
            membership,
            faults,
            mobility,
            seed,
        },
    })
}

/// Parses a scenario file, discarding the name/summary metadata.
///
/// # Errors
///
/// See [`parse_scenario`].
pub fn spec_from_toml(input: &str) -> Result<ScenarioSpec> {
    parse_scenario(input).map(|f| f.spec)
}

// ---------------------------------------------------------------------------
// Serialization: ScenarioSpec → TOML
// ---------------------------------------------------------------------------

/// Serializes a spec as a scenario file that parses back to an equal
/// spec ([`parse_scenario`] ∘ [`to_toml`] is the identity — property
/// tested).
///
/// # Errors
///
/// Returns an error when the spec's network model carries an active
/// *dynamic* partition (the `groups` device experiments install
/// mid-run, as opposed to a scheduled `[faults.partition]`), or when a
/// programmatically built spec carries a fault window or membership
/// config the parser would reject (`at >= heal`, zero probe period).
pub fn to_toml(spec: &ScenarioSpec) -> Result<String> {
    if spec.net.is_partitioned() {
        return Err(ScenarioFileError::global(
            "network models with active dynamic partitions are not representable in a \
             scenario file (use [faults.partition] for scheduled partitions)",
        ));
    }
    // Scheduled faults belong in `spec.faults` (merged into the network
    // by `ScenarioSpec::effective_net`); a base model already carrying
    // them would be silently lost on round trip.
    if !spec.net.faults().is_empty() {
        return Err(ScenarioFileError::global(
            "the base network model must not carry faults directly; \
             put them in the spec's fault schedule ([faults.*])",
        ));
    }
    if spec.net.mobility().is_some() {
        return Err(ScenarioFileError::global(
            "the base network model must not carry a mobility trace directly; \
             put it in the spec's mobility field ([mobility])",
        ));
    }
    // Mirror the parser's semantic checks so to_toml output always
    // parses back.
    if spec.faults.partition.is_some_and(|f| f.at >= f.heal) {
        return Err(ScenarioFileError::global(
            "[faults.partition] needs at < heal",
        ));
    }
    if spec.faults.oneway.is_some_and(|f| f.at >= f.until) {
        return Err(ScenarioFileError::global(
            "[faults.oneway] needs at < until",
        ));
    }
    if spec.faults.delay.is_some_and(|f| f.at >= f.until) {
        return Err(ScenarioFileError::global("[faults.delay] needs at < until"));
    }
    if let Some(m) = &spec.mobility {
        m.validate()
            .map_err(|e| ScenarioFileError::global(format!("[mobility] {e}")))?;
    }
    if spec
        .membership
        .as_ref()
        .is_some_and(|m| m.probe_period == SimDuration::ZERO)
    {
        return Err(ScenarioFileError::global(
            "[membership] probe_period must be positive",
        ));
    }
    let mut out = String::new();
    let mut push = |s: String| {
        out.push_str(&s);
        out.push('\n');
    };
    push("[scenario]".into());
    push(format!("arch = \"{}\"", spec.arch.name()));
    push(format!("nodes = {}", spec.n));
    push(format!("seed = {}", spec.seed));
    push(format!("shards = {}", spec.shards));
    push(format!("placement = \"{}\"", spec.placement.name()));
    push(format!("adaptive_window = {}", spec.adaptive_window));

    push("\n[topics]".into());
    push(format!("count = {}", spec.num_topics));
    push(format!("zipf_s = {}", fmt_float(spec.zipf_s)));

    push("\n[interest]".into());
    match spec.appetite {
        Appetite::Fixed(k) => {
            push("appetite = \"fixed\"".into());
            push(format!("topics_per_node = {k}"));
        }
        Appetite::Uniform { lo, hi } => {
            push("appetite = \"uniform\"".into());
            push(format!("lo = {lo}"));
            push(format!("hi = {hi}"));
        }
        Appetite::Bimodal {
            heavy_fraction,
            heavy,
            light,
        } => {
            push("appetite = \"bimodal\"".into());
            push(format!("heavy_fraction = {}", fmt_float(heavy_fraction)));
            push(format!("heavy = {heavy}"));
            push(format!("light = {light}"));
        }
    }

    push("\n[publish]".into());
    push(format!(
        "rate_per_sec = {}",
        fmt_float(spec.plan.rate_per_sec)
    ));
    push(format!("duration = {}", fmt_time(spec.plan.duration)));
    push(format!("warmup = {}", fmt_time(spec.plan.warmup)));
    push(format!(
        "topic_zipf_s = {}",
        fmt_float(spec.plan.topic_zipf_s)
    ));
    push(format!("payload_bytes = {}", spec.plan.payload_bytes));
    if let Some(flash) = spec.plan.flash {
        push("\n[publish.flash]".into());
        push(format!("at = {}", fmt_time(flash.at)));
        push(format!("topic_zipf_s = {}", fmt_float(flash.topic_zipf_s)));
        push(format!("rate_factor = {}", fmt_float(flash.rate_factor)));
    }

    if let Some(churn) = &spec.churn {
        push("\n[churn]".into());
        push(format!(
            "mean_session_secs = {}",
            fmt_float(churn.mean_session_secs)
        ));
        push(format!(
            "mean_downtime_secs = {}",
            fmt_float(churn.mean_downtime_secs)
        ));
        push(format!(
            "churning_fraction = {}",
            fmt_float(churn.churning_fraction)
        ));
        push(format!("duration = {}", fmt_time(churn.duration)));
        push(format!("warmup = {}", fmt_time(churn.warmup)));
    }

    push("\n[network]".into());
    match spec.net.latency_model() {
        LatencyModel::Constant(d) => {
            push("latency = \"constant\"".into());
            push(format!("delay = {}", fmt_dur(*d)));
        }
        LatencyModel::Uniform { lo, hi } => {
            push("latency = \"uniform\"".into());
            push(format!("lo = {}", fmt_dur(*lo)));
            push(format!("hi = {}", fmt_dur(*hi)));
        }
        LatencyModel::LogNormalMs {
            median_ms,
            sigma,
            floor,
        } => {
            push("latency = \"lognormal\"".into());
            push(format!("median_ms = {}", fmt_float(*median_ms)));
            push(format!("sigma = {}", fmt_float(*sigma)));
            push(format!("floor = {}", fmt_dur(*floor)));
        }
    }
    if spec.net.loss_probability() > 0.0 {
        push(format!("loss = {}", fmt_float(spec.net.loss_probability())));
    }

    if let Some(f) = &spec.faults.partition {
        push("\n[faults.partition]".into());
        push(format!("at = {}", fmt_time(f.at)));
        push(format!("heal = {}", fmt_time(f.heal)));
        push(format!("split = {}", f.split));
    }
    if let Some(f) = &spec.faults.oneway {
        push("\n[faults.oneway]".into());
        push(format!("at = {}", fmt_time(f.at)));
        push(format!("until = {}", fmt_time(f.until)));
        push(format!("split = {}", f.split));
    }
    if let Some(f) = &spec.faults.delay {
        push("\n[faults.delay]".into());
        push(format!("at = {}", fmt_time(f.at)));
        push(format!("until = {}", fmt_time(f.until)));
        push(format!("extra = {}", fmt_dur(f.extra)));
    }

    if let Some(m) = &spec.mobility {
        push("\n[mobility]".into());
        push(format!("split = {}", m.split));
        if let Some(p) = m.period {
            push(format!("period = {}", fmt_dur(p)));
        }
        for (k, s) in m.segments.iter().enumerate() {
            push(format!("\n[mobility.seg{k}]"));
            push(format!("at = {}", fmt_time(s.at)));
            push(format!("extra = {}", fmt_dur(s.extra)));
            push(format!("disconnected = {}", s.disconnected));
        }
    }

    if let Some(m) = &spec.membership {
        push("\n[membership]".into());
        push(format!("probe_period = {}", fmt_dur(m.probe_period)));
        push(format!("probe_timeout = {}", fmt_dur(m.probe_timeout)));
        push(format!("ping_req_fanout = {}", m.ping_req_fanout));
        push(format!("suspect_timeout = {}", fmt_dur(m.suspect_timeout)));
        push(format!("max_piggyback = {}", m.max_piggyback));
        push(format!("gossip_multiplier = {}", m.gossip_multiplier));
    }

    if let Some(t) = &spec.telemetry {
        push("\n[telemetry]".into());
        push(format!("window = {}", fmt_dur(t.window)));
        push(format!("load_hi = {}", fmt_float(t.load_hi)));
        push(format!("load_buckets = {}", t.load_buckets));
        push(format!("latency_hi_ms = {}", fmt_float(t.latency_hi_ms)));
        push(format!("latency_buckets = {}", t.latency_buckets));
    }

    if let Some(p) = &spec.profile {
        push("\n[profile]".into());
        if let Some(trace) = &p.trace {
            push(format!("trace = \"{trace}\""));
        }
    }

    if let Some(t) = &spec.trace {
        push("\n[trace]".into());
        push(format!("sample_rate = {}", fmt_float(t.sample_rate)));
        push(format!("salt = {}", t.salt));
        if let Some(export) = &t.export {
            push(format!("export = \"{export}\""));
        }
    }

    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
        [scenario]
        arch = "fair-gossip"
        nodes = 64
        seed = 7

        [topics]
        count = 20

        [interest]
        appetite = "fixed"
        topics_per_node = 3

        [publish]
        rate_per_sec = 10.0
        duration = "5s"
    "#;

    #[test]
    fn minimal_file_parses_with_defaults() {
        let f = parse_scenario(MINIMAL).unwrap();
        assert_eq!(f.spec.arch, Architecture::FairGossip);
        assert_eq!(f.spec.n, 64);
        assert_eq!(f.spec.seed, 7);
        assert_eq!(f.spec.shards, 1);
        assert_eq!(f.spec.placement, Placement::RoundRobin);
        assert!(f.spec.adaptive_window);
        assert_eq!(f.spec.appetite, Appetite::Fixed(3));
        assert_eq!(f.spec.plan.warmup, SimTime::from_secs(1));
        assert_eq!(f.spec.plan.payload_bytes, 64);
        assert!(f.spec.churn.is_none());
        assert!(f.spec.telemetry.is_none());
        assert_eq!(
            *f.spec.net.latency_model(),
            LatencyModel::Constant(SimDuration::from_millis(10))
        );
        // The minimal file materializes.
        f.spec.materialize().unwrap();
    }

    #[test]
    fn full_file_parses_every_knob() {
        let input = r#"
            [scenario]
            name = "kitchen-sink"
            summary = "every knob at once"
            arch = "scribe"
            nodes = 128          # trailing comment
            seed = 99
            shards = 4
            placement = "balanced"
            adaptive_window = false

            [topics]
            count = 50
            zipf_s = 1.2

            [interest]
            appetite = "bimodal"
            heavy_fraction = 0.25
            heavy = 12
            light = 2

            [publish]
            rate_per_sec = 40.5
            duration = "10s"
            warmup = "500ms"
            topic_zipf_s = 0.8
            payload_bytes = 256

            [publish.flash]
            at = "6s"
            topic_zipf_s = 3.5
            rate_factor = 4.0

            [churn]
            mean_session_secs = 12.0
            mean_downtime_secs = 3.0
            churning_fraction = 0.4
            duration = "8s"
            warmup = "1s"

            [network]
            latency = "lognormal"
            median_ms = 40.0
            sigma = 0.6
            floor = "5ms"
            loss = 0.01

            [telemetry]
            window = "250ms"
            load_hi = 128.0
            load_buckets = 128
            latency_hi_ms = 400.0
            latency_buckets = 80

            [profile]
            trace = "TRACE_kitchen-sink.json"
        "#;
        let f = parse_scenario(input).unwrap();
        assert_eq!(f.name.as_deref(), Some("kitchen-sink"));
        assert_eq!(f.summary.as_deref(), Some("every knob at once"));
        let s = &f.spec;
        assert_eq!(s.arch, Architecture::Scribe);
        assert_eq!((s.n, s.shards, s.seed), (128, 4, 99));
        assert_eq!(s.placement, Placement::Balanced);
        assert!(!s.adaptive_window);
        assert_eq!((s.num_topics, s.zipf_s), (50, 1.2));
        assert_eq!(
            s.appetite,
            Appetite::Bimodal {
                heavy_fraction: 0.25,
                heavy: 12,
                light: 2
            }
        );
        assert_eq!(s.plan.rate_per_sec, 40.5);
        assert_eq!(s.plan.duration, SimTime::from_secs(10));
        assert_eq!(s.plan.warmup, SimTime::from_millis(500));
        assert_eq!(s.plan.payload_bytes, 256);
        let flash = s.plan.flash.unwrap();
        assert_eq!(flash.at, SimTime::from_secs(6));
        assert_eq!(flash.rate_factor, 4.0);
        let churn = s.churn.unwrap();
        assert_eq!(churn.mean_session_secs, 12.0);
        assert_eq!(churn.churning_fraction, 0.4);
        assert_eq!(
            *s.net.latency_model(),
            LatencyModel::LogNormalMs {
                median_ms: 40.0,
                sigma: 0.6,
                floor: SimDuration::from_millis(5)
            }
        );
        assert_eq!(s.net.loss_probability(), 0.01);
        let t = s.telemetry.unwrap();
        assert_eq!(t.window, SimDuration::from_millis(250));
        assert_eq!((t.load_buckets, t.latency_buckets), (128, 80));
        let p = s.profile.clone().unwrap();
        assert_eq!(p.trace.as_deref(), Some("TRACE_kitchen-sink.json"));
        // And it round-trips exactly.
        let reparsed = spec_from_toml(&to_toml(s).unwrap()).unwrap();
        assert_eq!(*s, reparsed);
    }

    #[test]
    fn empty_profile_section_enables_profiling_with_defaults() {
        let input = format!("{MINIMAL}\n[profile]\n");
        let f = parse_scenario(&input).unwrap();
        assert_eq!(f.spec.profile, Some(ProfileSpec::default()));
        // No section at all means no profiling.
        assert!(parse_scenario(MINIMAL).unwrap().spec.profile.is_none());
        // Unknown keys in [profile] are rejected like everywhere else.
        let bad = format!("{MINIMAL}\n[profile]\ntrace_path = \"x.json\"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("unknown key `trace_path`"), "{err}");
        assert!(err.message.contains("trace"), "{err}");
        // An empty trace path is rejected by the spec check.
        let bad = format!("{MINIMAL}\n[profile]\ntrace = \"  \"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("[profile]"), "{err}");
    }

    #[test]
    fn trace_section_parses_and_validates() {
        // An empty section enables tracing with the defaults.
        let input = format!("{MINIMAL}\n[trace]\n");
        let f = parse_scenario(&input).unwrap();
        assert_eq!(f.spec.trace, Some(TraceSpec::default()));
        // No section at all means no tracing.
        assert!(parse_scenario(MINIMAL).unwrap().spec.trace.is_none());
        // All knobs round through.
        let input = format!(
            "{MINIMAL}\n[trace]\nsample_rate = 0.25\nsalt = 42\nexport = \"traces/t.json\"\n"
        );
        let t = parse_scenario(&input).unwrap().spec.trace.unwrap();
        assert_eq!(t.sample_rate, 0.25);
        assert_eq!(t.salt, 42);
        assert_eq!(t.export.as_deref(), Some("traces/t.json"));
        // Out-of-range rates and unknown keys are rejected.
        let bad = format!("{MINIMAL}\n[trace]\nsample_rate = 1.5\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("fraction"), "{err}");
        let bad = format!("{MINIMAL}\n[trace]\nrate = 0.5\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("unknown key `rate`"), "{err}");
        // An empty export path is rejected by the spec check.
        let bad = format!("{MINIMAL}\n[trace]\nexport = \" \"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("[trace]"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error_with_line_and_suggestions() {
        let input = MINIMAL.replace("rate_per_sec = 10.0", "ratez = 10.0");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.line.is_some());
        assert!(err.message.contains("unknown key `ratez`"), "{err}");
        assert!(err.message.contains("rate_per_sec"), "{err}");
        // …and the section-level required-key error still fires.
        assert!(parse_scenario(&input.replace("ratez = 10.0", "")).is_err());
    }

    #[test]
    fn unknown_section_is_an_error() {
        let input = format!("{MINIMAL}\n[pubs]\nx = 1\n");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("unknown section [pubs]"), "{err}");
    }

    #[test]
    fn bad_duration_unit_is_an_error() {
        let input = MINIMAL.replace("\"5s\"", "\"5sec\"");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("bad duration"), "{err}");
        assert!(err.message.contains("publish"), "{err}");
        // A bare number is not a duration either.
        let input = MINIMAL.replace("\"5s\"", "5");
        assert!(parse_scenario(&input).is_err());
    }

    #[test]
    fn out_of_range_shards_is_an_error() {
        let input = MINIMAL.replace("seed = 7", "seed = 7\nshards = 0");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
        let input = MINIMAL.replace("seed = 7", "seed = 7\nshards = 4096");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("out of range"), "{err}");
    }

    #[test]
    fn unknown_arch_lists_valid_names() {
        let input = MINIMAL.replace("fair-gossip", "gossipzilla");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("gossipzilla"), "{err}");
        assert!(err.message.contains("splitstream"), "{err}");
    }

    #[test]
    fn duplicate_key_and_section_are_errors() {
        let input = MINIMAL.replace("nodes = 64", "nodes = 64\nnodes = 65");
        assert!(parse_scenario(&input)
            .unwrap_err()
            .message
            .contains("duplicate key"));
        let input = format!("{MINIMAL}\n[topics]\ncount = 2\n");
        assert!(parse_scenario(&input)
            .unwrap_err()
            .message
            .contains("duplicate section"));
    }

    #[test]
    fn type_mismatches_are_actionable() {
        let input = MINIMAL.replace("nodes = 64", "nodes = \"many\"");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("expected an integer"), "{err}");
        let input = MINIMAL.replace("count = 20", "count = 20.5");
        assert!(parse_scenario(&input).is_err());
    }

    #[test]
    fn underscore_grouping_works_in_integers_and_floats() {
        let input = MINIMAL
            .replace("nodes = 64", "nodes = 1_000")
            .replace("rate_per_sec = 10.0", "rate_per_sec = 1_000.5");
        let f = parse_scenario(&input).unwrap();
        assert_eq!(f.spec.n, 1000);
        assert_eq!(f.spec.plan.rate_per_sec, 1000.5);
    }

    #[test]
    fn loss_probability_range_is_enforced() {
        let with_net =
            format!("{MINIMAL}\n[network]\nlatency = \"constant\"\ndelay = \"10ms\"\nloss = 1.0\n");
        let err = parse_scenario(&with_net).unwrap_err();
        assert!(err.message.contains("[0, 1)"), "{err}");
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let input = MINIMAL.replace("[topics]", "[topics] # the universe\n# full-line comment");
        parse_scenario(&input).unwrap();
        let named = MINIMAL.replace(
            "[scenario]",
            "[scenario]\nname = \"has # hash and \\\"quotes\\\"\"",
        );
        let f = parse_scenario(&named).unwrap();
        assert_eq!(f.name.as_deref(), Some("has # hash and \"quotes\""));
    }

    #[test]
    fn standard_specs_round_trip() {
        for arch in Architecture::ALL {
            let spec = ScenarioSpec::standard(arch, 200, 13)
                .with_shards(7)
                .with_placement(Placement::Balanced);
            let toml = to_toml(&spec).unwrap();
            assert_eq!(spec_from_toml(&toml).unwrap(), spec, "{toml}");
        }
    }

    #[test]
    fn partitioned_network_is_unrepresentable() {
        let mut spec = ScenarioSpec::fair_gossip(8, 1);
        spec.net.partition(vec![0, 0, 1, 1, 0, 0, 1, 1]);
        let err = to_toml(&spec).unwrap_err();
        assert!(err.message.contains("partition"), "{err}");
    }

    #[test]
    fn faults_and_membership_parse_and_round_trip() {
        let input = format!(
            "{MINIMAL}\n\
             [faults.partition]\nat = \"2s\"\nheal = \"4s\"\nsplit = 8\n\n\
             [faults.oneway]\nat = \"1s\"\nuntil = \"3s\"\nsplit = 32\n\n\
             [faults.delay]\nat = \"500ms\"\nuntil = \"2500ms\"\nextra = \"40ms\"\n\n\
             [membership]\nprobe_period = \"250ms\"\nping_req_fanout = 2\n"
        );
        let f = parse_scenario(&input).unwrap();
        let faults = &f.spec.faults;
        assert_eq!(
            faults.partition,
            Some(PartitionFault {
                at: SimTime::from_secs(2),
                heal: SimTime::from_secs(4),
                split: 8,
            })
        );
        assert_eq!(
            faults.oneway,
            Some(OnewayFault {
                at: SimTime::from_secs(1),
                until: SimTime::from_secs(3),
                split: 32,
            })
        );
        assert_eq!(
            faults.delay,
            Some(DelayFault {
                at: SimTime::from_millis(500),
                until: SimTime::from_millis(2500),
                extra: SimDuration::from_millis(40),
            })
        );
        // Unset [membership] keys fall back to the standard config.
        let m = f.spec.membership.as_ref().unwrap();
        assert_eq!(m.probe_period, SimDuration::from_millis(250));
        assert_eq!(m.ping_req_fanout, 2);
        assert_eq!(m.suspect_timeout, SwimConfig::standard().suspect_timeout);
        // And the whole thing survives a round trip.
        let toml = to_toml(&f.spec).unwrap();
        assert_eq!(spec_from_toml(&toml).unwrap(), f.spec, "{toml}");
    }

    #[test]
    fn degenerate_fault_windows_are_rejected() {
        let bad = format!("{MINIMAL}\n[faults.partition]\nat = \"4s\"\nheal = \"4s\"\nsplit = 8\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("at < heal"), "{err}");
        let bad = format!("{MINIMAL}\n[faults.oneway]\nat = \"4s\"\nuntil = \"1s\"\nsplit = 8\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("at < until"), "{err}");
        let bad =
            format!("{MINIMAL}\n[faults.delay]\nat = \"4s\"\nuntil = \"4s\"\nextra = \"1ms\"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("at < until"), "{err}");
    }

    #[test]
    fn zero_probe_period_is_rejected() {
        let bad = format!("{MINIMAL}\n[membership]\nprobe_period = \"0ms\"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("probe_period"), "{err}");
        // An empty [membership] section enables the standard detector.
        let ok = format!("{MINIMAL}\n[membership]\n");
        let f = parse_scenario(&ok).unwrap();
        assert_eq!(f.spec.membership, Some(SwimConfig::standard()));
    }

    #[test]
    fn net_carrying_faults_directly_is_unrepresentable() {
        let mut spec = ScenarioSpec::fair_gossip(8, 1);
        spec.net.faults_mut().delay = Some(DelayFault {
            at: SimTime::from_secs(1),
            until: SimTime::from_secs(2),
            extra: SimDuration::from_millis(5),
        });
        let err = to_toml(&spec).unwrap_err();
        assert!(err.message.contains("fault schedule"), "{err}");
    }

    #[test]
    fn mobility_trace_parses_and_round_trips() {
        let input = format!(
            "{MINIMAL}\n\
             [mobility]\nsplit = 16\nperiod = \"2s\"\n\n\
             [mobility.seg0]\nat = \"0s\"\nextra = \"30ms\"\n\n\
             [mobility.seg1]\nat = \"1500ms\"\ndisconnected = true\n"
        );
        let f = parse_scenario(&input).unwrap();
        let m = f.spec.mobility.as_ref().unwrap();
        assert_eq!(m.split, 16);
        assert_eq!(m.period, Some(SimDuration::from_secs(2)));
        assert_eq!(
            m.segments,
            vec![
                MobilitySegment {
                    at: SimTime::ZERO,
                    extra: SimDuration::from_millis(30),
                    disconnected: false,
                },
                MobilitySegment {
                    at: SimTime::from_millis(1500),
                    extra: SimDuration::ZERO,
                    disconnected: true,
                },
            ]
        );
        let toml = to_toml(&f.spec).unwrap();
        assert_eq!(spec_from_toml(&toml).unwrap(), f.spec, "{toml}");
        // An aperiodic trace round-trips without a period key.
        let input = format!(
            "{MINIMAL}\n\
             [mobility]\nsplit = 4\n\n\
             [mobility.seg0]\nat = \"3s\"\ndisconnected = true\n"
        );
        let f = parse_scenario(&input).unwrap();
        assert_eq!(f.spec.mobility.as_ref().unwrap().period, None);
        let toml = to_toml(&f.spec).unwrap();
        assert_eq!(spec_from_toml(&toml).unwrap(), f.spec, "{toml}");
    }

    #[test]
    fn mobility_invalid_traces_are_rejected() {
        // No segments at all.
        let bad = format!("{MINIMAL}\n[mobility]\nsplit = 4\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("at least one segment"), "{err}");
        // Non-increasing segment instants.
        let bad = format!(
            "{MINIMAL}\n[mobility]\nsplit = 4\n\n\
             [mobility.seg0]\nat = \"1s\"\n\n[mobility.seg1]\nat = \"1s\"\n"
        );
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("strictly increasing"), "{err}");
        // Segment at or past the period.
        let bad = format!(
            "{MINIMAL}\n[mobility]\nsplit = 4\nperiod = \"1s\"\n\n\
             [mobility.seg0]\nat = \"1s\"\n"
        );
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("past the period"), "{err}");
        // Zero period.
        let bad = format!(
            "{MINIMAL}\n[mobility]\nsplit = 4\nperiod = \"0s\"\n\n\
             [mobility.seg0]\nat = \"0s\"\n"
        );
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("positive"), "{err}");
    }

    #[test]
    fn mobility_segment_bookkeeping_errors_are_targeted() {
        // A segment without its parent [mobility].
        let bad = format!("{MINIMAL}\n[mobility.seg0]\nat = \"0s\"\n");
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("parent [mobility]"), "{err}");
        // A gap in the numbering: seg0 then seg2.
        let bad = format!(
            "{MINIMAL}\n[mobility]\nsplit = 4\n\n\
             [mobility.seg0]\nat = \"0s\"\n\n[mobility.seg2]\nat = \"2s\"\n"
        );
        let err = parse_scenario(&bad).unwrap_err();
        assert!(err.message.contains("[mobility.seg1]"), "{err}");
        // Unknown keys inside a segment are rejected like everywhere else.
        let bad = format!(
            "{MINIMAL}\n[mobility]\nsplit = 4\n\n\
             [mobility.seg0]\nat = \"0s\"\nextraa = \"1ms\"\n"
        );
        let err = parse_scenario(&bad).unwrap_err();
        assert!(
            err.message
                .contains("unknown key `extraa` in [mobility.seg0]"),
            "{err}"
        );
    }

    #[test]
    fn net_carrying_mobility_directly_is_unrepresentable() {
        let trace = MobilityTrace {
            split: 2,
            period: None,
            segments: vec![MobilitySegment {
                at: SimTime::ZERO,
                extra: SimDuration::from_millis(1),
                disconnected: false,
            }],
        };
        let mut spec = ScenarioSpec::fair_gossip(8, 1);
        spec.net = spec.net.clone().with_mobility(Some(trace.clone()));
        let err = to_toml(&spec).unwrap_err();
        assert!(err.message.contains("mobility trace directly"), "{err}");
        // In the spec's mobility field the same trace serializes fine.
        let spec = ScenarioSpec::fair_gossip(8, 1).with_mobility(trace);
        let toml = to_toml(&spec).unwrap();
        assert_eq!(spec_from_toml(&toml).unwrap(), spec, "{toml}");
    }

    #[test]
    fn odd_durations_round_trip_in_exact_units() {
        assert_eq!(fmt_duration_us(2_000_000), "\"2s\"");
        assert_eq!(fmt_duration_us(1_500_000), "\"1500ms\"");
        assert_eq!(fmt_duration_us(1_234_567), "\"1234567us\"");
        for us in [0u64, 1, 999, 1_000, 1_001, 1_500_000, u64::MAX] {
            let formatted = fmt_duration_us(us);
            let stripped = formatted.trim_matches('"');
            assert_eq!(parse_duration_str(stripped), Some(us), "{formatted}");
        }
        assert_eq!(parse_duration_str("10sec"), None);
        assert_eq!(parse_duration_str("-5ms"), None);
        assert_eq!(parse_duration_str("1.5s"), None);
        assert_eq!(parse_duration_str("ms"), None);
    }
}
