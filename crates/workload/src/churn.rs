//! Churn traces: scheduled crashes and rejoins.

use fed_sim::SimTime;
use fed_telemetry::membership::DowntimeInterval;
use fed_util::dist::{Exponential, InvalidDistribution};
use fed_util::rng::Rng64;

/// One churn action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The node crashes/leaves.
    Crash,
    /// The node rejoins with fresh state.
    Join,
}

/// A scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which node.
    pub node: usize,
    /// Crash or join.
    pub action: ChurnAction,
}

/// Parameters of a random churn trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Mean node session length in seconds (exponential).
    pub mean_session_secs: f64,
    /// Mean downtime before rejoin in seconds (exponential).
    pub mean_downtime_secs: f64,
    /// Fraction of the population subject to churn (the rest are stable).
    pub churning_fraction: f64,
    /// Trace horizon.
    pub duration: SimTime,
    /// No churn before this instant.
    pub warmup: SimTime,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan {
            mean_session_secs: 30.0,
            mean_downtime_secs: 10.0,
            churning_fraction: 0.3,
            duration: SimTime::from_secs(60),
            warmup: SimTime::from_secs(5),
        }
    }
}

/// Generates an alternating crash/join trace per churning node.
///
/// Node indices `0..n*fraction` churn (callers can shuffle identities via
/// interest assignment instead — keeping the churning set to a prefix makes
/// experiments easy to stratify).
///
/// # Errors
///
/// Returns [`InvalidDistribution`] for non-positive means.
pub fn generate_churn<R: Rng64>(
    rng: &mut R,
    n: usize,
    plan: &ChurnPlan,
) -> Result<Vec<ChurnEvent>, InvalidDistribution> {
    // A non-positive or non-finite mean makes `1/mean` invalid, which
    // `Exponential::new` rejects — the error the rustdoc promises, instead
    // of clamping into an absurd rate.
    let session = Exponential::new(1.0 / plan.mean_session_secs)?;
    let downtime = Exponential::new(1.0 / plan.mean_downtime_secs)?;
    let churners = ((n as f64) * plan.churning_fraction.clamp(0.0, 1.0)).round() as usize;
    let horizon = plan.warmup.as_secs_f64() + plan.duration.as_secs_f64();
    let mut events = Vec::new();
    for node in 0..churners.min(n) {
        let mut t = plan.warmup.as_secs_f64() + session.sample(rng);
        let mut up = true;
        while t < horizon {
            events.push(ChurnEvent {
                at: SimTime::from_micros((t * 1e6) as u64),
                node,
                action: if up {
                    ChurnAction::Crash
                } else {
                    ChurnAction::Join
                },
            });
            t += if up {
                downtime.sample(rng)
            } else {
                session.sample(rng)
            };
            up = !up;
        }
    }
    events.sort_by_key(|e| (e.at, e.node));
    Ok(events)
}

/// Folds a churn trace into ground-truth [`DowntimeInterval`]s for the
/// membership-telemetry classifier.
///
/// Each `Crash` opens an interval for that node; the matching `Join`
/// closes it (exclusive). A node still down at `horizon` gets an interval
/// ending at `horizon`. The trace is interpreted as produced by
/// [`generate_churn`]: sorted by time, strictly alternating per node,
/// starting with a crash — a second crash while already down is ignored,
/// as is a join while up.
pub fn downtime_intervals(events: &[ChurnEvent], horizon: SimTime) -> Vec<DowntimeInterval> {
    let mut open: std::collections::BTreeMap<usize, SimTime> = std::collections::BTreeMap::new();
    let mut intervals = Vec::new();
    for e in events {
        match e.action {
            ChurnAction::Crash => {
                open.entry(e.node).or_insert(e.at);
            }
            ChurnAction::Join => {
                if let Some(down) = open.remove(&e.node) {
                    intervals.push(DowntimeInterval {
                        node: e.node,
                        down,
                        up: e.at,
                    });
                }
            }
        }
    }
    for (node, down) in open {
        intervals.push(DowntimeInterval {
            node,
            down,
            up: horizon,
        });
    }
    intervals.sort_by_key(|d| (d.down, d.node));
    intervals
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(99)
    }

    #[test]
    fn trace_alternates_per_node() {
        let plan = ChurnPlan::default();
        let events = generate_churn(&mut rng(), 100, &plan).unwrap();
        assert!(!events.is_empty());
        for node in 0..30 {
            let actions: Vec<ChurnAction> = events
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.action)
                .collect();
            for (i, a) in actions.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    ChurnAction::Crash
                } else {
                    ChurnAction::Join
                };
                assert_eq!(*a, expect, "node {node} step {i}");
            }
        }
    }

    #[test]
    fn only_churning_fraction_affected() {
        let plan = ChurnPlan {
            churning_fraction: 0.1,
            ..ChurnPlan::default()
        };
        let events = generate_churn(&mut rng(), 100, &plan).unwrap();
        assert!(events.iter().all(|e| e.node < 10));
    }

    #[test]
    fn respects_warmup_and_horizon() {
        let plan = ChurnPlan {
            warmup: SimTime::from_secs(10),
            duration: SimTime::from_secs(20),
            ..ChurnPlan::default()
        };
        let events = generate_churn(&mut rng(), 50, &plan).unwrap();
        for e in &events {
            assert!(e.at >= SimTime::from_secs(10));
            assert!(e.at < SimTime::from_secs(30));
        }
    }

    #[test]
    fn sorted_by_time() {
        let events = generate_churn(&mut rng(), 60, &ChurnPlan::default()).unwrap();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_fraction_no_churn() {
        let plan = ChurnPlan {
            churning_fraction: 0.0,
            ..ChurnPlan::default()
        };
        assert!(generate_churn(&mut rng(), 50, &plan).unwrap().is_empty());
    }

    #[test]
    fn non_positive_means_are_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let plan = ChurnPlan {
                mean_session_secs: bad,
                ..ChurnPlan::default()
            };
            assert!(generate_churn(&mut rng(), 10, &plan).is_err(), "{bad}");
            let plan = ChurnPlan {
                mean_downtime_secs: bad,
                ..ChurnPlan::default()
            };
            assert!(generate_churn(&mut rng(), 10, &plan).is_err(), "{bad}");
        }
    }

    #[test]
    fn downtime_intervals_pair_crashes_with_joins() {
        let t = SimTime::from_millis;
        let events = [
            ChurnEvent {
                at: t(100),
                node: 2,
                action: ChurnAction::Crash,
            },
            ChurnEvent {
                at: t(200),
                node: 5,
                action: ChurnAction::Crash,
            },
            ChurnEvent {
                at: t(400),
                node: 2,
                action: ChurnAction::Join,
            },
            ChurnEvent {
                at: t(600),
                node: 2,
                action: ChurnAction::Crash,
            },
        ];
        let intervals = downtime_intervals(&events, t(1_000));
        assert_eq!(
            intervals,
            vec![
                DowntimeInterval {
                    node: 2,
                    down: t(100),
                    up: t(400),
                },
                DowntimeInterval {
                    node: 5,
                    down: t(200),
                    up: t(1_000),
                },
                DowntimeInterval {
                    node: 2,
                    down: t(600),
                    up: t(1_000),
                },
            ]
        );
    }

    #[test]
    fn downtime_intervals_cover_generated_traces() {
        let plan = ChurnPlan::default();
        let horizon = SimTime::from_secs(65);
        let events = generate_churn(&mut rng(), 80, &plan).unwrap();
        let intervals = downtime_intervals(&events, horizon);
        // One interval per crash event, each well-formed.
        let crashes = events
            .iter()
            .filter(|e| e.action == ChurnAction::Crash)
            .count();
        assert_eq!(intervals.len(), crashes);
        assert!(intervals.iter().all(|d| d.down < d.up && d.up <= horizon));
    }

    #[test]
    fn deterministic() {
        let a = generate_churn(&mut rng(), 40, &ChurnPlan::default()).unwrap();
        let b = generate_churn(&mut rng(), 40, &ChurnPlan::default()).unwrap();
        assert_eq!(a, b);
    }
}
