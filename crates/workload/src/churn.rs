//! Churn traces: scheduled crashes and rejoins.

use fed_sim::SimTime;
use fed_util::dist::{Exponential, InvalidDistribution};
use fed_util::rng::Rng64;

/// One churn action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnAction {
    /// The node crashes/leaves.
    Crash,
    /// The node rejoins with fresh state.
    Join,
}

/// A scheduled churn event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChurnEvent {
    /// When it happens.
    pub at: SimTime,
    /// Which node.
    pub node: usize,
    /// Crash or join.
    pub action: ChurnAction,
}

/// Parameters of a random churn trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnPlan {
    /// Mean node session length in seconds (exponential).
    pub mean_session_secs: f64,
    /// Mean downtime before rejoin in seconds (exponential).
    pub mean_downtime_secs: f64,
    /// Fraction of the population subject to churn (the rest are stable).
    pub churning_fraction: f64,
    /// Trace horizon.
    pub duration: SimTime,
    /// No churn before this instant.
    pub warmup: SimTime,
}

impl Default for ChurnPlan {
    fn default() -> Self {
        ChurnPlan {
            mean_session_secs: 30.0,
            mean_downtime_secs: 10.0,
            churning_fraction: 0.3,
            duration: SimTime::from_secs(60),
            warmup: SimTime::from_secs(5),
        }
    }
}

/// Generates an alternating crash/join trace per churning node.
///
/// Node indices `0..n*fraction` churn (callers can shuffle identities via
/// interest assignment instead — keeping the churning set to a prefix makes
/// experiments easy to stratify).
///
/// # Errors
///
/// Returns [`InvalidDistribution`] for non-positive means.
pub fn generate_churn<R: Rng64>(
    rng: &mut R,
    n: usize,
    plan: &ChurnPlan,
) -> Result<Vec<ChurnEvent>, InvalidDistribution> {
    let session = Exponential::new(1.0 / plan.mean_session_secs.max(f64::MIN_POSITIVE))?;
    let downtime = Exponential::new(1.0 / plan.mean_downtime_secs.max(f64::MIN_POSITIVE))?;
    let churners = ((n as f64) * plan.churning_fraction.clamp(0.0, 1.0)).round() as usize;
    let horizon = plan.warmup.as_secs_f64() + plan.duration.as_secs_f64();
    let mut events = Vec::new();
    for node in 0..churners.min(n) {
        let mut t = plan.warmup.as_secs_f64() + session.sample(rng);
        let mut up = true;
        while t < horizon {
            events.push(ChurnEvent {
                at: SimTime::from_micros((t * 1e6) as u64),
                node,
                action: if up {
                    ChurnAction::Crash
                } else {
                    ChurnAction::Join
                },
            });
            t += if up {
                downtime.sample(rng)
            } else {
                session.sample(rng)
            };
            up = !up;
        }
    }
    events.sort_by_key(|e| (e.at, e.node));
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(99)
    }

    #[test]
    fn trace_alternates_per_node() {
        let plan = ChurnPlan::default();
        let events = generate_churn(&mut rng(), 100, &plan).unwrap();
        assert!(!events.is_empty());
        for node in 0..30 {
            let actions: Vec<ChurnAction> = events
                .iter()
                .filter(|e| e.node == node)
                .map(|e| e.action)
                .collect();
            for (i, a) in actions.iter().enumerate() {
                let expect = if i % 2 == 0 {
                    ChurnAction::Crash
                } else {
                    ChurnAction::Join
                };
                assert_eq!(*a, expect, "node {node} step {i}");
            }
        }
    }

    #[test]
    fn only_churning_fraction_affected() {
        let plan = ChurnPlan {
            churning_fraction: 0.1,
            ..ChurnPlan::default()
        };
        let events = generate_churn(&mut rng(), 100, &plan).unwrap();
        assert!(events.iter().all(|e| e.node < 10));
    }

    #[test]
    fn respects_warmup_and_horizon() {
        let plan = ChurnPlan {
            warmup: SimTime::from_secs(10),
            duration: SimTime::from_secs(20),
            ..ChurnPlan::default()
        };
        let events = generate_churn(&mut rng(), 50, &plan).unwrap();
        for e in &events {
            assert!(e.at >= SimTime::from_secs(10));
            assert!(e.at < SimTime::from_secs(30));
        }
    }

    #[test]
    fn sorted_by_time() {
        let events = generate_churn(&mut rng(), 60, &ChurnPlan::default()).unwrap();
        assert!(events.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn zero_fraction_no_churn() {
        let plan = ChurnPlan {
            churning_fraction: 0.0,
            ..ChurnPlan::default()
        };
        assert!(generate_churn(&mut rng(), 50, &plan).unwrap().is_empty());
    }

    #[test]
    fn deterministic() {
        let a = generate_churn(&mut rng(), 40, &ChurnPlan::default()).unwrap();
        let b = generate_churn(&mut rng(), 40, &ChurnPlan::default()).unwrap();
        assert_eq!(a, b);
    }
}
