//! Deterministic generative scenario workloads for sweeps and fuzzing.
//!
//! [`generated_spec`] maps a `(sweep_seed, index)` pair to one
//! [`ScenarioSpec`] — a pure function, so a sweep over indices
//! `0..count` is reproducible from its seed alone, resumable from any
//! index, and identical on every machine. The generated space covers
//! the workload dimensions the hand-curated `scenarios/` library
//! samples only pointwise: population size, topic universe and skew,
//! all three interest appetites, publication rate and flash crowds,
//! churn, every latency model, iid loss, scheduled faults and
//! time-varying connectivity (`[mobility]` traces).
//!
//! Two invariants every generated spec satisfies, enforced by tests:
//!
//! * it is **representable**: `to_toml` succeeds and round-trips, so a
//!   failing spec can always be dumped as a repro `.toml` file;
//! * it is **runnable**: `materialize` succeeds and the population /
//!   duration bounds keep a seq-vs-cluster differential run cheap.
//!
//! The spec is architecture-agnostic (always generated as fair gossip):
//! sweep and fuzz harnesses iterate architectures on top via
//! [`ScenarioSpec::with_arch`], so every architecture faces the
//! identical workload at a given index.

use crate::churn::ChurnPlan;
use crate::interest::Appetite;
use crate::pubs::{FlashCrowd, PubPlan};
use crate::scenario::ScenarioSpec;
use fed_sim::network::{
    DelayFault, FaultSchedule, LatencyModel, MobilitySegment, MobilityTrace, NetworkModel,
    PartitionFault,
};
use fed_sim::{SimDuration, SimTime};
use fed_util::rng::{Rng64, SplitMix64, Xoshiro256StarStar};

/// Smallest population a generated scenario uses.
pub const MIN_NODES: usize = 32;
/// Largest population a generated scenario uses — small enough that a
/// differential seq-vs-cluster run of one spec stays well under a
/// second.
pub const MAX_NODES: usize = 192;

/// The generator RNG for one `(sweep_seed, index)` cell.
///
/// Seeding goes through one SplitMix64 scramble so neighbouring indices
/// land in unrelated regions of the Xoshiro state space.
fn cell_rng(sweep_seed: u64, index: u64) -> Xoshiro256StarStar {
    let mut mix = SplitMix64::seed_from_u64(sweep_seed ^ index.rotate_left(17));
    Xoshiro256StarStar::seed_from_u64(mix.next_u64())
}

fn duration_ms(rng: &mut impl Rng64, lo: u64, hi: u64) -> SimDuration {
    SimDuration::from_millis(lo + rng.range_u64(hi - lo + 1))
}

fn time_ms(rng: &mut impl Rng64, lo: u64, hi: u64) -> SimTime {
    SimTime::from_millis(lo + rng.range_u64(hi - lo + 1))
}

/// Fractions with a finite decimal expansion keep the generated spec's
/// floats exactly representable in the TOML round trip.
fn fraction(rng: &mut impl Rng64, den: u64) -> f64 {
    rng.range_u64(den + 1) as f64 / den as f64
}

fn appetite(rng: &mut impl Rng64) -> Appetite {
    match rng.range_u64(3) {
        0 => Appetite::Fixed(1 + rng.range_usize(6)),
        1 => {
            let lo = rng.range_usize(3);
            Appetite::Uniform {
                lo,
                hi: lo + 1 + rng.range_usize(6),
            }
        }
        _ => Appetite::Bimodal {
            heavy_fraction: 0.05 + fraction(rng, 100) * 0.4,
            heavy: 4 + rng.range_usize(8),
            light: 1 + rng.range_usize(2),
        },
    }
}

fn latency(rng: &mut impl Rng64) -> LatencyModel {
    match rng.range_u64(3) {
        0 => LatencyModel::Constant(duration_ms(rng, 1, 30)),
        1 => {
            let lo = duration_ms(rng, 1, 15);
            LatencyModel::Uniform {
                lo,
                hi: lo + duration_ms(rng, 1, 30),
            }
        }
        _ => LatencyModel::LogNormalMs {
            median_ms: (5 + rng.range_u64(40)) as f64,
            sigma: fraction(rng, 10) * 0.8,
            // Always floored: generated WAN models keep a real lookahead
            // so the sharded half of a differential run stays fast.
            floor: duration_ms(rng, 1, 5),
        },
    }
}

/// Faults are generated against the run phase `[0, horizon_ms)` so a
/// scheduled window actually overlaps the publication phase.
fn faults(rng: &mut impl Rng64, n: usize, horizon_ms: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::default();
    if rng.bernoulli(0.25) {
        let at = rng.range_u64(horizon_ms / 2);
        schedule.partition = Some(PartitionFault {
            at: SimTime::from_millis(at),
            heal: SimTime::from_millis(at + 200 + rng.range_u64(horizon_ms / 2)),
            split: (1 + rng.range_usize(n - 1)) as u32,
        });
    }
    if rng.bernoulli(0.2) {
        let at = rng.range_u64(horizon_ms / 2);
        schedule.delay = Some(DelayFault {
            at: SimTime::from_millis(at),
            until: SimTime::from_millis(at + 200 + rng.range_u64(horizon_ms / 2)),
            extra: duration_ms(rng, 5, 60),
        });
    }
    schedule
}

fn mobility(rng: &mut impl Rng64, n: usize, horizon_ms: u64) -> Option<MobilityTrace> {
    if !rng.bernoulli(0.3) {
        return None;
    }
    let split = (1 + rng.range_usize(n - 1)) as u32;
    let periodic = rng.bernoulli(0.5);
    let mut segments = Vec::new();
    let mut at = if rng.bernoulli(0.5) {
        0
    } else {
        rng.range_u64(horizon_ms / 4)
    };
    for _ in 0..1 + rng.range_u64(3) {
        segments.push(MobilitySegment {
            at: SimTime::from_millis(at),
            extra: if rng.bernoulli(0.7) {
                duration_ms(rng, 5, 50)
            } else {
                SimDuration::ZERO
            },
            disconnected: rng.bernoulli(0.35),
        });
        at += 100 + rng.range_u64(horizon_ms / 4);
    }
    let period = periodic.then(|| SimDuration::from_millis(at + 100 + rng.range_u64(500)));
    Some(MobilityTrace {
        split,
        period,
        segments,
    })
}

/// The generated scenario at `(sweep_seed, index)`.
///
/// Pure and total: every `(seed, index)` yields a spec, the same one
/// every time. The spec always names fair gossip; callers swap the
/// architecture per run.
pub fn generated_spec(sweep_seed: u64, index: u64) -> ScenarioSpec {
    let mut rng = cell_rng(sweep_seed, index);
    let n = MIN_NODES + rng.range_usize(MAX_NODES - MIN_NODES + 1);
    let num_topics = 8 + rng.range_usize(33);
    let warmup = time_ms(&mut rng, 200, 800);
    let duration = time_ms(&mut rng, 800, 2_000);
    let horizon_ms = warmup.as_millis() + duration.as_millis();
    let flash = rng.bernoulli(0.2).then(|| FlashCrowd {
        at: SimTime::from_millis(warmup.as_millis() + rng.range_u64(duration.as_millis())),
        topic_zipf_s: 2.0 + fraction(&mut rng, 10) * 2.0,
        rate_factor: 2.0 + rng.range_u64(9) as f64,
    });
    let churn = rng.bernoulli(0.25).then(|| ChurnPlan {
        mean_session_secs: 2.0 + rng.range_u64(9) as f64,
        mean_downtime_secs: 1.0 + rng.range_u64(3) as f64,
        churning_fraction: 0.1 + fraction(&mut rng, 10) * 0.3,
        duration: SimTime::from_millis(horizon_ms),
        warmup,
    });
    let latency = latency(&mut rng);
    let loss = if rng.bernoulli(0.3) {
        fraction(&mut rng, 100) * 0.05
    } else {
        0.0
    };
    let net = if loss > 0.0 {
        NetworkModel::lossy(latency, loss)
    } else {
        NetworkModel::reliable(latency)
    };
    let faults = faults(&mut rng, n, horizon_ms);
    let mobility = mobility(&mut rng, n, horizon_ms);
    let mut spec = ScenarioSpec::fair_gossip(n, rng.next_u64());
    spec.n = n;
    spec.num_topics = num_topics;
    spec.zipf_s = fraction(&mut rng, 10) * 2.0;
    spec.appetite = appetite(&mut rng);
    spec.plan = PubPlan {
        rate_per_sec: (5 + rng.range_u64(36)) as f64,
        duration,
        topic_zipf_s: fraction(&mut rng, 10) * 2.0,
        payload_bytes: 32 << rng.range_u64(4),
        warmup,
        flash,
    };
    spec.churn = churn;
    spec.net = net;
    spec.faults = faults;
    spec.mobility = mobility;
    spec
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_file::{spec_from_toml, to_toml};

    #[test]
    fn generated_specs_are_deterministic() {
        for index in 0..32 {
            assert_eq!(generated_spec(42, index), generated_spec(42, index));
        }
        // Different cells differ (the generator is not degenerate).
        assert_ne!(generated_spec(42, 0), generated_spec(42, 1));
        assert_ne!(generated_spec(42, 0), generated_spec(43, 0));
    }

    #[test]
    fn generated_specs_are_representable_and_runnable() {
        for index in 0..64 {
            let spec = generated_spec(7, index);
            assert!(
                (MIN_NODES..=MAX_NODES).contains(&spec.n),
                "index {index}: n={}",
                spec.n
            );
            let toml =
                to_toml(&spec).unwrap_or_else(|e| panic!("index {index} not representable: {e}"));
            assert_eq!(
                spec_from_toml(&toml).unwrap(),
                spec,
                "index {index} round trip diverged"
            );
            spec.materialize()
                .unwrap_or_else(|e| panic!("index {index} does not materialize: {e}"));
        }
    }

    #[test]
    fn generated_space_covers_the_dynamic_dimensions() {
        let mut mobile = 0;
        let mut periodic = 0;
        let mut faulty = 0;
        let mut churny = 0;
        for index in 0..128 {
            let spec = generated_spec(42, index);
            if let Some(m) = &spec.mobility {
                mobile += 1;
                if m.period.is_some() {
                    periodic += 1;
                }
                m.validate().expect("generated traces are valid");
            }
            if !spec.faults.is_empty() {
                faulty += 1;
            }
            if spec.churn.is_some() {
                churny += 1;
            }
        }
        assert!(mobile >= 20, "only {mobile}/128 specs carried mobility");
        assert!(periodic >= 5, "only {periodic} periodic traces");
        assert!(faulty >= 25, "only {faulty}/128 specs carried faults");
        assert!(churny >= 15, "only {churny}/128 specs carried churn");
    }
}
