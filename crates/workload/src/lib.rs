//! # fed-workload
//!
//! Scenario generation for the experiments: heterogeneous interest
//! profiles (Zipf topic popularity × per-node appetite), Poisson/regular
//! publication schedules and churn traces. All generators are
//! deterministic under a seeded [`fed_util::rng::Rng64`].
//!
//! [`ScenarioSpec`] bundles a whole run behind one seeded value, and the
//! [`scenario_file`] module gives specs a declarative TOML form
//! (strictly validated, exactly round-tripping) — the format behind the
//! curated `scenarios/` library and the `fed-experiments run` command;
//! see `docs/SCENARIOS.md` for the key-by-key reference.
//!
//! ## Examples
//!
//! ```
//! use fed_util::rng::Xoshiro256StarStar;
//! use fed_workload::interest::{Appetite, InterestProfile};
//! use fed_workload::pubs::{generate_schedule, PubPlan};
//!
//! let mut rng = Xoshiro256StarStar::seed_from_u64(1);
//! let profile = InterestProfile::generate(&mut rng, 100, 20, 1.0, Appetite::Fixed(3))?;
//! assert_eq!(profile.total_subscriptions(), 300);
//! let schedule = generate_schedule(&mut rng, 100, 20, &PubPlan::default())?;
//! assert!(!schedule.is_empty());
//! # Ok::<(), fed_util::dist::InvalidDistribution>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;
pub mod generate;
pub mod interest;
pub mod pubs;
pub mod scenario;
pub mod scenario_file;

pub use churn::{generate_churn, ChurnAction, ChurnEvent, ChurnPlan};
pub use generate::generated_spec;
pub use interest::{Appetite, InterestProfile};
pub use pubs::{generate_schedule, regular_schedule, FlashCrowd, PubPlan, Publication};
pub use scenario::{Architecture, MaterializedScenario, Placement, ScenarioSpec};
pub use scenario_file::{parse_scenario, spec_from_toml, to_toml, ScenarioFile, ScenarioFileError};
