//! A complete scenario description, shared by every engine.
//!
//! [`ScenarioSpec`] bundles everything needed to reproduce an experiment
//! run — population size, shard count, interest profile parameters,
//! publication plan, optional churn and the network model — behind a
//! single seeded value. The experiment harness materializes the spec into
//! ground truth ([`ScenarioSpec::materialize`]) and wires the same
//! workload into either the sequential `fed_sim::Simulation` or the
//! sharded `fed-cluster` runtime; because materialization is a pure
//! function of the spec, both engines see identical inputs.

use crate::churn::{generate_churn, ChurnEvent, ChurnPlan};
use crate::interest::{Appetite, InterestProfile};
use crate::pubs::{generate_schedule, PubPlan, Publication};
use fed_membership::swim::SwimConfig;
use fed_profile::ProfileSpec;
use fed_sim::network::{FaultSchedule, LatencyModel, MobilityTrace, NetworkModel};
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::TelemetrySpec;
use fed_trace::TraceSpec;
use fed_util::dist::InvalidDistribution;
use fed_util::rng::{Rng64, Xoshiro256StarStar};

/// The dissemination architecture a scenario runs.
///
/// The spec names the architecture; the experiment harness maps each
/// variant to its node type and shared infrastructure (DHT routing
/// tables, group tables, the SplitStream forest). Keeping the selection
/// here means one seeded value fully describes a run on either engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Fairness-adaptive gossip — the paper's protocol.
    FairGossip,
    /// Classic static-fanout gossip (the fair protocol with adaptation
    /// switched off).
    StaticGossip,
    /// Central broker: one node matches and forwards everything.
    Broker,
    /// Scribe-style multicast trees over a Pastry DHT (paper §4.1).
    Scribe,
    /// DKS-style per-topic groups behind an index DHT (paper §4.1).
    Dks,
    /// Data-aware multicast: per-topic gossip groups (paper §4.2).
    Dam,
    /// SplitStream-style interior-node-disjoint forest (paper §3.1).
    SplitStream,
    /// Telemetry-driven broker/fair-gossip hybrid: starts as a central
    /// broker and hands dissemination over to fair gossip mid-run when
    /// the broker's per-window forwarding load spikes.
    Hybrid,
}

impl Architecture {
    /// Every architecture, in the paper's presentation order.
    pub const ALL: [Architecture; 8] = [
        Architecture::FairGossip,
        Architecture::StaticGossip,
        Architecture::Broker,
        Architecture::Scribe,
        Architecture::Dks,
        Architecture::Dam,
        Architecture::SplitStream,
        Architecture::Hybrid,
    ];

    /// The scaling sweep: fair gossip plus every structured baseline the
    /// paper compares against (broker, Scribe, DKS, DAM, SplitStream).
    pub const SWEEP: [Architecture; 6] = [
        Architecture::FairGossip,
        Architecture::Broker,
        Architecture::Scribe,
        Architecture::Dks,
        Architecture::Dam,
        Architecture::SplitStream,
    ];

    /// Stable lowercase name (table rows, CLI arguments).
    pub fn name(self) -> &'static str {
        match self {
            Architecture::FairGossip => "fair-gossip",
            Architecture::StaticGossip => "static-gossip",
            Architecture::Broker => "broker",
            Architecture::Scribe => "scribe",
            Architecture::Dks => "dks",
            Architecture::Dam => "dam",
            Architecture::SplitStream => "splitstream",
            Architecture::Hybrid => "hybrid",
        }
    }

    /// Parses a [`Architecture::name`] back into the variant.
    pub fn parse(s: &str) -> Option<Architecture> {
        Architecture::ALL.into_iter().find(|a| a.name() == s)
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Node→shard placement policy for the sharded engine.
///
/// A pure performance knob: per-node random streams depend only on
/// `(seed, node id)`, so every placement produces the bit-identical
/// virtual-world outcome — what changes is how evenly event-processing
/// load spreads over worker threads. The experiment harness maps each
/// variant onto a `fed_cluster::ShardMap`; `Balanced` derives its
/// per-node weights from the materialized scenario's event-count profile
/// (subscription counts and scheduled publications).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Placement {
    /// Node `i` on shard `i % shards` (the seed-era default).
    #[default]
    RoundRobin,
    /// Contiguous id blocks per shard.
    Block,
    /// Load-balanced greedy assignment guided by the scenario's expected
    /// per-node event counts.
    Balanced,
}

impl Placement {
    /// Every placement policy.
    pub const ALL: [Placement; 3] = [Placement::RoundRobin, Placement::Block, Placement::Balanced];

    /// Stable lowercase name (table rows, CLI arguments).
    pub fn name(self) -> &'static str {
        match self {
            Placement::RoundRobin => "round-robin",
            Placement::Block => "block",
            Placement::Balanced => "balanced",
        }
    }

    /// Parses a [`Placement::name`] back into the variant.
    pub fn parse(s: &str) -> Option<Placement> {
        Placement::ALL.into_iter().find(|p| p.name() == s)
    }
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A self-contained, seeded description of one experiment scenario.
///
/// Specs are plain data and compare with `==`; the
/// [`crate::scenario_file`] module gives them a declarative TOML form
/// (`parse` ∘ `serialize` is the identity on specs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// The dissemination architecture under test.
    pub arch: Architecture,
    /// Population size.
    pub n: usize,
    /// Number of shards when run on the sharded engine (`1` = sequential
    /// semantics; the result is identical either way).
    pub shards: usize,
    /// Node→shard placement policy on the sharded engine (performance
    /// only; never changes the outcome).
    pub placement: Placement,
    /// Whether the sharded engine grows/shrinks barrier windows from
    /// observed events-per-window (performance only; never changes the
    /// outcome). `false` pins windows to the lookahead, the seed-era
    /// behavior.
    pub adaptive_window: bool,
    /// Topic universe size.
    pub num_topics: usize,
    /// Topic popularity skew for subscriptions.
    pub zipf_s: f64,
    /// Per-node subscription appetite.
    pub appetite: Appetite,
    /// Publication plan.
    pub plan: PubPlan,
    /// Optional churn trace parameters.
    pub churn: Option<ChurnPlan>,
    /// Optional in-protocol SWIM failure detection for the gossip-based
    /// architectures (fair/static gossip and the hybrid's gossip mode).
    /// Protocol-level: enabling it changes message traffic, but stays
    /// bit-identical across engines, shard counts and placements.
    pub membership: Option<SwimConfig>,
    /// Scheduled deterministic faults (partitions, one-way failures,
    /// delay spikes) applied by the network model. Empty by default.
    pub faults: FaultSchedule,
    /// Optional time-varying connectivity trace (piecewise cross-split
    /// extra latency / blackouts, optionally periodic) applied by the
    /// network model. Like faults, verdicts are pure functions of
    /// `(now, from, to)`, so bit-identity across engines holds.
    pub mobility: Option<MobilityTrace>,
    /// Optional streaming telemetry: when set, the harness attaches
    /// `fed-telemetry` collectors and the run emits a per-window time
    /// series. Observation only — the virtual-world outcome is
    /// bit-identical with or without it.
    pub telemetry: Option<TelemetrySpec>,
    /// Optional scheduler profiling: when set, the harness attaches
    /// `fed-profile` collectors and the run reports phase timings, stall
    /// attribution and work counters (plus a Chrome-trace file).
    /// Observation only — the virtual-world outcome is bit-identical
    /// with or without it.
    pub profile: Option<ProfileSpec>,
    /// Optional per-event dissemination tracing: when set, the harness
    /// attaches `fed-trace` collectors and the run reports per-event
    /// delivery-tree metrics and a forwarding-cost attribution table
    /// (plus a Perfetto trace file). Sampling is a pure hash of the
    /// event id, so the virtual-world outcome is bit-identical with or
    /// without it, at any shard count.
    pub trace: Option<TraceSpec>,
    /// Network model.
    pub net: NetworkModel,
    /// Master seed fixing the interest profile, the publication schedule,
    /// the churn trace and the simulation itself.
    pub seed: u64,
}

/// Ground truth generated from a [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct MaterializedScenario {
    /// Who subscribes to what.
    pub profile: InterestProfile,
    /// Scheduled publications.
    pub schedule: Vec<Publication>,
    /// Crash/join trace (empty without a churn plan).
    pub churn: Vec<ChurnEvent>,
    /// End of the scenario including the drain margin.
    pub horizon: SimTime,
}

impl ScenarioSpec {
    /// The standard fair-gossip scenario: heterogeneous bimodal interest
    /// over a Zipf topic universe with a steady publication stream on a
    /// reliable 10 ms network.
    pub fn fair_gossip(n: usize, seed: u64) -> Self {
        ScenarioSpec {
            arch: Architecture::FairGossip,
            n,
            shards: 1,
            placement: Placement::RoundRobin,
            adaptive_window: true,
            num_topics: 20,
            zipf_s: 1.0,
            appetite: Appetite::Bimodal {
                heavy_fraction: 0.2,
                heavy: 8,
                light: 1,
            },
            plan: PubPlan {
                rate_per_sec: 20.0,
                duration: SimTime::from_secs(20),
                topic_zipf_s: 1.0,
                payload_bytes: 64,
                warmup: SimTime::from_secs(2),
                flash: None,
            },
            churn: None,
            membership: None,
            faults: FaultSchedule::default(),
            mobility: None,
            telemetry: None,
            profile: None,
            trace: None,
            net: NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10))),
            seed,
        }
    }

    /// The standard scenario for an arbitrary architecture: the
    /// [`ScenarioSpec::fair_gossip`] workload with the architecture
    /// swapped — every system faces the identical population, interest
    /// profile, publication schedule and network.
    pub fn standard(arch: Architecture, n: usize, seed: u64) -> Self {
        ScenarioSpec {
            arch,
            ..ScenarioSpec::fair_gossip(n, seed)
        }
    }

    /// Returns the spec with a different shard count.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Returns the spec with a different architecture.
    pub fn with_arch(mut self, arch: Architecture) -> Self {
        self.arch = arch;
        self
    }

    /// Returns the spec with a different placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Returns the spec with adaptive window sizing switched on or off.
    pub fn with_adaptive_window(mut self, adaptive: bool) -> Self {
        self.adaptive_window = adaptive;
        self
    }

    /// Returns the spec with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns the spec with streaming telemetry attached (observation
    /// only; never changes the outcome).
    pub fn with_telemetry(mut self, telemetry: TelemetrySpec) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Returns the spec with scheduler profiling attached (observation
    /// only; never changes the outcome).
    pub fn with_profile(mut self, profile: ProfileSpec) -> Self {
        self.profile = Some(profile);
        self
    }

    /// Returns the spec with per-event dissemination tracing attached
    /// (observation only; never changes the outcome).
    pub fn with_trace(mut self, trace: TraceSpec) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Returns the spec with the SWIM failure detector enabled.
    pub fn with_membership(mut self, swim: SwimConfig) -> Self {
        self.membership = Some(swim);
        self
    }

    /// Returns the spec with a scheduled fault schedule.
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Returns the spec with a time-varying connectivity trace.
    pub fn with_mobility(mut self, mobility: MobilityTrace) -> Self {
        self.mobility = Some(mobility);
        self
    }

    /// The network model with the spec's fault schedule and mobility
    /// trace applied — what the harness hands to the engines.
    pub fn effective_net(&self) -> NetworkModel {
        self.net
            .clone()
            .with_faults(self.faults)
            .with_mobility(self.mobility.clone())
    }

    /// End of the publication phase plus a drain margin (TTL rounds plus
    /// latency slack).
    pub fn horizon(&self) -> SimTime {
        SimTime::from_micros(
            self.plan.warmup.as_micros() + self.plan.duration.as_micros() + 4_000_000,
        )
    }

    /// Generates the scenario's ground truth.
    ///
    /// The generator stream order is fixed — interest profile, then
    /// publication schedule, then churn — so adding a churn plan never
    /// perturbs the interest profile or the schedule of an otherwise
    /// identical spec.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] when the spec's distribution
    /// parameters are invalid (e.g. non-positive publication rate).
    pub fn materialize(&self) -> Result<MaterializedScenario, InvalidDistribution> {
        let mut rng = Xoshiro256StarStar::seed_from_u64(self.seed);
        let profile = InterestProfile::generate(
            &mut rng,
            self.n,
            self.num_topics,
            self.zipf_s,
            self.appetite,
        )?;
        let schedule = generate_schedule(&mut rng, self.n, self.num_topics, &self.plan)?;
        let churn = match &self.churn {
            Some(plan) => {
                let mut churn_rng = rng.fork();
                generate_churn(&mut churn_rng, self.n, plan)?
            }
            None => Vec::new(),
        };
        Ok(MaterializedScenario {
            profile,
            schedule,
            churn,
            horizon: self.horizon(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn materialize_is_deterministic() {
        let spec = ScenarioSpec::fair_gossip(64, 7);
        let a = spec.materialize().unwrap();
        let b = spec.materialize().unwrap();
        assert_eq!(a.schedule.len(), b.schedule.len());
        for (x, y) in a.schedule.iter().zip(&b.schedule) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.publisher, y.publisher);
            assert_eq!(x.event.id(), y.event.id());
        }
        assert_eq!(
            a.profile.total_subscriptions(),
            b.profile.total_subscriptions()
        );
        assert_eq!(a.horizon, b.horizon);
    }

    #[test]
    fn churn_does_not_perturb_profile_or_schedule() {
        let quiet = ScenarioSpec::fair_gossip(64, 7);
        let churny = ScenarioSpec {
            churn: Some(ChurnPlan::default()),
            ..quiet.clone()
        };
        let a = quiet.materialize().unwrap();
        let b = churny.materialize().unwrap();
        assert!(a.churn.is_empty());
        assert!(!b.churn.is_empty());
        assert_eq!(a.schedule.len(), b.schedule.len());
        for (x, y) in a.schedule.iter().zip(&b.schedule) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.event.id(), y.event.id());
        }
        for i in 0..64 {
            assert_eq!(a.profile.topics_of(i), b.profile.topics_of(i));
        }
    }

    #[test]
    fn with_shards_clamps_to_one() {
        assert_eq!(ScenarioSpec::fair_gossip(8, 1).with_shards(0).shards, 1);
        assert_eq!(ScenarioSpec::fair_gossip(8, 1).with_shards(4).shards, 4);
    }

    #[test]
    fn architecture_names_round_trip() {
        for arch in Architecture::ALL {
            assert_eq!(Architecture::parse(arch.name()), Some(arch));
            assert_eq!(format!("{arch}"), arch.name());
        }
        assert_eq!(Architecture::parse("no-such-system"), None);
        // The sweep is a subset of ALL.
        for arch in Architecture::SWEEP {
            assert!(Architecture::ALL.contains(&arch));
        }
    }

    #[test]
    fn placement_names_round_trip() {
        for p in Placement::ALL {
            assert_eq!(Placement::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(Placement::parse("no-such-policy"), None);
        assert_eq!(Placement::default(), Placement::RoundRobin);
    }

    #[test]
    fn scheduler_knobs_are_performance_only_fields() {
        let spec = ScenarioSpec::fair_gossip(8, 1)
            .with_placement(Placement::Balanced)
            .with_adaptive_window(false);
        assert_eq!(spec.placement, Placement::Balanced);
        assert!(!spec.adaptive_window);
        // The knobs never enter materialization: ground truth is
        // identical whatever the scheduler does.
        let base = ScenarioSpec::fair_gossip(8, 1).materialize().unwrap();
        let knobbed = spec.materialize().unwrap();
        assert_eq!(base.schedule.len(), knobbed.schedule.len());
        for (x, y) in base.schedule.iter().zip(&knobbed.schedule) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.event.id(), y.event.id());
        }
    }

    #[test]
    fn standard_only_changes_the_architecture() {
        let fair = ScenarioSpec::fair_gossip(32, 9);
        let broker = ScenarioSpec::standard(Architecture::Broker, 32, 9);
        assert_eq!(broker.arch, Architecture::Broker);
        assert_eq!(broker.n, fair.n);
        assert_eq!(broker.seed, fair.seed);
        assert_eq!(broker.num_topics, fair.num_topics);
        let a = fair.materialize().unwrap();
        let b = broker.materialize().unwrap();
        assert_eq!(a.schedule.len(), b.schedule.len());
        for i in 0..32 {
            assert_eq!(a.profile.topics_of(i), b.profile.topics_of(i));
        }
    }

    #[test]
    fn horizon_covers_plan_plus_drain() {
        let spec = ScenarioSpec::fair_gossip(8, 1);
        assert_eq!(
            spec.horizon().as_micros(),
            spec.plan.warmup.as_micros() + spec.plan.duration.as_micros() + 4_000_000
        );
    }
}
