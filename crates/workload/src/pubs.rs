//! Publication schedules: when, where and what gets published.

use fed_pubsub::{Event, EventId, TopicId};
use fed_sim::SimTime;
use fed_util::dist::{Exponential, InvalidDistribution, Zipf};
use fed_util::rng::Rng64;

/// One scheduled publication.
#[derive(Debug, Clone)]
pub struct Publication {
    /// When the publish command fires.
    pub at: SimTime,
    /// The publishing node index.
    pub publisher: usize,
    /// The event (topic, id and payload already set).
    pub event: Event,
}

/// Parameters of a publication schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PubPlan {
    /// Mean publications per simulated second (Poisson process).
    pub rate_per_sec: f64,
    /// Total simulated span to fill.
    pub duration: SimTime,
    /// Zipf exponent over topics (0 = uniform; same skew convention as
    /// subscriptions).
    pub topic_zipf_s: f64,
    /// Payload bytes attached to each event.
    pub payload_bytes: usize,
    /// Warm-up offset: no publication before this instant (gives gossip
    /// rounds and controllers time to start).
    pub warmup: SimTime,
}

impl Default for PubPlan {
    fn default() -> Self {
        PubPlan {
            rate_per_sec: 10.0,
            duration: SimTime::from_secs(30),
            topic_zipf_s: 1.0,
            payload_bytes: 64,
            warmup: SimTime::from_secs(1),
        }
    }
}

/// Generates the full schedule for `n` publishers over `num_topics` topics.
///
/// Publishers are chosen uniformly; inter-arrival times are exponential
/// (Poisson process); topics follow the plan's Zipf law. Event ids are
/// `(publisher, per-publisher sequence)` so they are globally unique.
///
/// # Errors
///
/// Returns [`InvalidDistribution`] for non-positive rate or invalid skew.
pub fn generate_schedule<R: Rng64>(
    rng: &mut R,
    n: usize,
    num_topics: usize,
    plan: &PubPlan,
) -> Result<Vec<Publication>, InvalidDistribution> {
    let inter = Exponential::new(plan.rate_per_sec)?;
    let zipf = Zipf::new(num_topics, plan.topic_zipf_s)?;
    let mut schedule = Vec::new();
    let mut seqs = vec![0u32; n];
    let mut t = plan.warmup.as_secs_f64();
    let end = plan.warmup.as_secs_f64() + plan.duration.as_secs_f64();
    while t < end {
        t += inter.sample(rng);
        if t >= end {
            break;
        }
        let publisher = rng.range_usize(n);
        let topic = TopicId::new(zipf.sample(rng) as u32);
        let seq = seqs[publisher];
        seqs[publisher] += 1;
        let event = Event::builder(EventId::new(publisher as u32, seq), topic)
            .payload_bytes(plan.payload_bytes)
            .build();
        schedule.push(Publication {
            at: SimTime::from_micros((t * 1e6) as u64),
            publisher,
            event,
        });
    }
    Ok(schedule)
}

/// A deterministic fixed-interval schedule: one publication every
/// `interval`, round-robin over publishers, cycling topics `0..num_topics`.
///
/// Useful for tests and convergence experiments where Poisson noise would
/// obscure the signal.
pub fn regular_schedule(
    n: usize,
    num_topics: usize,
    count: usize,
    start: SimTime,
    interval: SimTime,
    payload_bytes: usize,
) -> Vec<Publication> {
    (0..count)
        .map(|k| {
            let publisher = k % n.max(1);
            let topic = TopicId::new((k % num_topics.max(1)) as u32);
            let event =
                Event::builder(EventId::new(publisher as u32, (k / n.max(1)) as u32), topic)
                    .payload_bytes(payload_bytes)
                    .build();
            Publication {
                at: SimTime::from_micros(start.as_micros() + interval.as_micros() * k as u64),
                publisher,
                event,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;
    use std::collections::HashSet;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(7)
    }

    #[test]
    fn poisson_schedule_respects_bounds() {
        let plan = PubPlan {
            rate_per_sec: 50.0,
            duration: SimTime::from_secs(10),
            warmup: SimTime::from_secs(2),
            ..PubPlan::default()
        };
        let s = generate_schedule(&mut rng(), 20, 10, &plan).unwrap();
        assert!(!s.is_empty());
        let count = s.len() as f64;
        // ~500 expected
        assert!((350.0..650.0).contains(&count), "count={count}");
        for p in &s {
            assert!(p.at >= plan.warmup);
            assert!(p.at < SimTime::from_secs(12));
            assert!(p.publisher < 20);
            assert!(p.event.topic().index() < 10);
        }
        // Times are sorted.
        assert!(s.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn event_ids_globally_unique() {
        let plan = PubPlan::default();
        let s = generate_schedule(&mut rng(), 5, 4, &plan).unwrap();
        let ids: HashSet<_> = s.iter().map(|p| p.event.id()).collect();
        assert_eq!(ids.len(), s.len());
    }

    #[test]
    fn zipf_topics_skewed() {
        let plan = PubPlan {
            rate_per_sec: 100.0,
            duration: SimTime::from_secs(30),
            topic_zipf_s: 1.5,
            ..PubPlan::default()
        };
        let s = generate_schedule(&mut rng(), 10, 20, &plan).unwrap();
        let top = s.iter().filter(|p| p.event.topic().index() == 0).count();
        let tail = s.iter().filter(|p| p.event.topic().index() == 19).count();
        assert!(top > tail * 3, "top={top} tail={tail}");
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = PubPlan::default();
        let a = generate_schedule(&mut rng(), 8, 4, &plan).unwrap();
        let b = generate_schedule(&mut rng(), 8, 4, &plan).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.publisher, y.publisher);
            assert_eq!(x.event.id(), y.event.id());
        }
    }

    #[test]
    fn invalid_plan_rejected() {
        let plan = PubPlan {
            rate_per_sec: 0.0,
            ..PubPlan::default()
        };
        assert!(generate_schedule(&mut rng(), 4, 4, &plan).is_err());
    }

    #[test]
    fn regular_schedule_round_robins() {
        let s = regular_schedule(
            3,
            2,
            7,
            SimTime::from_secs(1),
            SimTime::from_millis(100),
            32,
        );
        assert_eq!(s.len(), 7);
        assert_eq!(s[0].publisher, 0);
        assert_eq!(s[1].publisher, 1);
        assert_eq!(s[2].publisher, 2);
        assert_eq!(s[3].publisher, 0);
        assert_eq!(s[0].at, SimTime::from_secs(1));
        assert_eq!(s[1].at, SimTime::from_millis(1100));
        // ids unique
        let ids: HashSet<_> = s.iter().map(|p| p.event.id()).collect();
        assert_eq!(ids.len(), 7);
        // topics cycle
        assert_eq!(s[0].event.topic(), TopicId::new(0));
        assert_eq!(s[1].event.topic(), TopicId::new(1));
        assert_eq!(s[2].event.topic(), TopicId::new(0));
    }
}
