//! Publication schedules: when, where and what gets published.

use fed_pubsub::{Event, EventId, TopicId};
use fed_sim::SimTime;
use fed_util::dist::{Exponential, InvalidDistribution, Zipf};
use fed_util::rng::Rng64;

/// One scheduled publication.
#[derive(Debug, Clone)]
pub struct Publication {
    /// When the publish command fires.
    pub at: SimTime,
    /// The publishing node index.
    pub publisher: usize,
    /// The event (topic, id and payload already set).
    pub event: Event,
}

/// A phased flash crowd: at a configured instant the publication stream
/// shifts onto a much hotter topic distribution (and optionally a higher
/// rate), modelling a breaking-news burst.
///
/// Structured overlays look fair in steady state while concentrating
/// load on interior nodes exactly during such bursts — this is the knob
/// the `timeseries` experiment uses to expose those transients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashCrowd {
    /// When the crowd arrives (absolute instant; publications at or
    /// after it use the hot parameters).
    pub at: SimTime,
    /// Zipf exponent over topics during the crowd (large = almost
    /// everything lands on the hottest topics).
    pub topic_zipf_s: f64,
    /// Publication-rate multiplier during the crowd (1.0 = same rate).
    pub rate_factor: f64,
}

/// Parameters of a publication schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PubPlan {
    /// Mean publications per simulated second (Poisson process).
    pub rate_per_sec: f64,
    /// Total simulated span to fill.
    pub duration: SimTime,
    /// Zipf exponent over topics (0 = uniform; same skew convention as
    /// subscriptions).
    pub topic_zipf_s: f64,
    /// Payload bytes attached to each event.
    pub payload_bytes: usize,
    /// Warm-up offset: no publication before this instant (gives gossip
    /// rounds and controllers time to start).
    pub warmup: SimTime,
    /// Optional flash-crowd phase shift; `None` keeps one steady phase.
    pub flash: Option<FlashCrowd>,
}

impl Default for PubPlan {
    fn default() -> Self {
        PubPlan {
            rate_per_sec: 10.0,
            duration: SimTime::from_secs(30),
            topic_zipf_s: 1.0,
            payload_bytes: 64,
            warmup: SimTime::from_secs(1),
            flash: None,
        }
    }
}

/// Generates the full schedule for `n` publishers over `num_topics` topics.
///
/// Publishers are chosen uniformly; inter-arrival times are exponential
/// (Poisson process); topics follow the plan's Zipf law. Event ids are
/// `(publisher, per-publisher sequence)` so they are globally unique.
///
/// With a [`FlashCrowd`] configured the schedule is generated in two
/// phases: the steady phase up to `flash.at`, then the hot phase from
/// `max(flash.at, warmup)` with the crowd's Zipf skew and rate — the
/// Poisson process is memoryless, so restarting the inter-arrival clock
/// at the phase boundary keeps both phases exact.
///
/// # Errors
///
/// Returns [`InvalidDistribution`] for non-positive rates or invalid
/// skews (in either phase).
pub fn generate_schedule<R: Rng64>(
    rng: &mut R,
    n: usize,
    num_topics: usize,
    plan: &PubPlan,
) -> Result<Vec<Publication>, InvalidDistribution> {
    let mut schedule = Vec::new();
    let mut seqs = vec![0u32; n];
    let warmup = plan.warmup.as_secs_f64();
    let end = warmup + plan.duration.as_secs_f64();
    let phase = |rng: &mut R,
                 seqs: &mut Vec<u32>,
                 schedule: &mut Vec<Publication>,
                 rate: f64,
                 zipf_s: f64,
                 from: f64,
                 to: f64|
     -> Result<(), InvalidDistribution> {
        let inter = Exponential::new(rate)?;
        let zipf = Zipf::new(num_topics, zipf_s)?;
        let mut t = from;
        while t < to {
            t += inter.sample(rng);
            if t >= to {
                break;
            }
            let publisher = rng.range_usize(n);
            let topic = TopicId::new(zipf.sample(rng) as u32);
            let seq = seqs[publisher];
            seqs[publisher] += 1;
            let event = Event::builder(EventId::new(publisher as u32, seq), topic)
                .payload_bytes(plan.payload_bytes)
                .build();
            schedule.push(Publication {
                at: SimTime::from_micros((t * 1e6) as u64),
                publisher,
                event,
            });
        }
        Ok(())
    };
    match plan.flash {
        None => phase(
            rng,
            &mut seqs,
            &mut schedule,
            plan.rate_per_sec,
            plan.topic_zipf_s,
            warmup,
            end,
        )?,
        Some(flash) => {
            let split = flash.at.as_secs_f64().clamp(warmup, end);
            phase(
                rng,
                &mut seqs,
                &mut schedule,
                plan.rate_per_sec,
                plan.topic_zipf_s,
                warmup,
                split,
            )?;
            phase(
                rng,
                &mut seqs,
                &mut schedule,
                plan.rate_per_sec * flash.rate_factor,
                flash.topic_zipf_s,
                split,
                end,
            )?;
        }
    }
    Ok(schedule)
}

/// A deterministic fixed-interval schedule: one publication every
/// `interval`, round-robin over publishers, cycling topics `0..num_topics`.
///
/// Useful for tests and convergence experiments where Poisson noise would
/// obscure the signal.
pub fn regular_schedule(
    n: usize,
    num_topics: usize,
    count: usize,
    start: SimTime,
    interval: SimTime,
    payload_bytes: usize,
) -> Vec<Publication> {
    (0..count)
        .map(|k| {
            let publisher = k % n.max(1);
            let topic = TopicId::new((k % num_topics.max(1)) as u32);
            let event =
                Event::builder(EventId::new(publisher as u32, (k / n.max(1)) as u32), topic)
                    .payload_bytes(payload_bytes)
                    .build();
            Publication {
                at: SimTime::from_micros(start.as_micros() + interval.as_micros() * k as u64),
                publisher,
                event,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;
    use std::collections::HashSet;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(7)
    }

    #[test]
    fn poisson_schedule_respects_bounds() {
        let plan = PubPlan {
            rate_per_sec: 50.0,
            duration: SimTime::from_secs(10),
            warmup: SimTime::from_secs(2),
            ..PubPlan::default()
        };
        let s = generate_schedule(&mut rng(), 20, 10, &plan).unwrap();
        assert!(!s.is_empty());
        let count = s.len() as f64;
        // ~500 expected
        assert!((350.0..650.0).contains(&count), "count={count}");
        for p in &s {
            assert!(p.at >= plan.warmup);
            assert!(p.at < SimTime::from_secs(12));
            assert!(p.publisher < 20);
            assert!(p.event.topic().index() < 10);
        }
        // Times are sorted.
        assert!(s.windows(2).all(|w| w[0].at <= w[1].at));
    }

    #[test]
    fn event_ids_globally_unique() {
        let plan = PubPlan::default();
        let s = generate_schedule(&mut rng(), 5, 4, &plan).unwrap();
        let ids: HashSet<_> = s.iter().map(|p| p.event.id()).collect();
        assert_eq!(ids.len(), s.len());
    }

    #[test]
    fn zipf_topics_skewed() {
        let plan = PubPlan {
            rate_per_sec: 100.0,
            duration: SimTime::from_secs(30),
            topic_zipf_s: 1.5,
            ..PubPlan::default()
        };
        let s = generate_schedule(&mut rng(), 10, 20, &plan).unwrap();
        let top = s.iter().filter(|p| p.event.topic().index() == 0).count();
        let tail = s.iter().filter(|p| p.event.topic().index() == 19).count();
        assert!(top > tail * 3, "top={top} tail={tail}");
    }

    #[test]
    fn schedule_is_deterministic() {
        let plan = PubPlan::default();
        let a = generate_schedule(&mut rng(), 8, 4, &plan).unwrap();
        let b = generate_schedule(&mut rng(), 8, 4, &plan).unwrap();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at, y.at);
            assert_eq!(x.publisher, y.publisher);
            assert_eq!(x.event.id(), y.event.id());
        }
    }

    #[test]
    fn invalid_plan_rejected() {
        let plan = PubPlan {
            rate_per_sec: 0.0,
            ..PubPlan::default()
        };
        assert!(generate_schedule(&mut rng(), 4, 4, &plan).is_err());
    }

    #[test]
    fn flash_crowd_shifts_topics_and_rate_at_the_instant() {
        let flash_at = SimTime::from_secs(16);
        let plan = PubPlan {
            rate_per_sec: 40.0,
            duration: SimTime::from_secs(30),
            topic_zipf_s: 0.0, // uniform before the crowd
            payload_bytes: 64,
            warmup: SimTime::from_secs(1),
            flash: Some(FlashCrowd {
                at: flash_at,
                topic_zipf_s: 4.0, // nearly everything on topic 0
                rate_factor: 3.0,
            }),
        };
        let s = generate_schedule(&mut rng(), 20, 10, &plan).unwrap();
        let (before, after): (Vec<_>, Vec<_>) = s.iter().partition(|p| p.at < flash_at);
        assert!(!before.is_empty() && !after.is_empty());
        // Rate roughly triples: spans are 15 s each, so the hot phase
        // should hold clearly more publications.
        assert!(
            after.len() > before.len() * 2,
            "before={} after={}",
            before.len(),
            after.len()
        );
        // Steady phase is uniform; the crowd concentrates on topic 0.
        let hot_share = |v: &[&Publication]| {
            v.iter().filter(|p| p.event.topic().index() == 0).count() as f64 / v.len() as f64
        };
        assert!(hot_share(&before) < 0.3, "steady phase must stay spread");
        assert!(hot_share(&after) > 0.7, "crowd must concentrate");
        // Global invariants survive the phase boundary.
        assert!(s.windows(2).all(|w| w[0].at <= w[1].at), "sorted");
        let ids: HashSet<_> = s.iter().map(|p| p.event.id()).collect();
        assert_eq!(ids.len(), s.len(), "ids stay globally unique");
    }

    #[test]
    fn flash_crowd_outside_the_plan_span_is_harmless() {
        let base = PubPlan {
            rate_per_sec: 30.0,
            duration: SimTime::from_secs(5),
            ..PubPlan::default()
        };
        // A crowd after the end: identical to no crowd in distribution
        // (phase 2 is empty), and a crowd before warmup runs hot-only.
        let late = PubPlan {
            flash: Some(FlashCrowd {
                at: SimTime::from_secs(100),
                topic_zipf_s: 4.0,
                rate_factor: 5.0,
            }),
            ..base
        };
        let s = generate_schedule(&mut rng(), 8, 6, &late).unwrap();
        assert!(!s.is_empty());
        assert!(s.iter().all(|p| p.at < SimTime::from_secs(6)));
        let early = PubPlan {
            flash: Some(FlashCrowd {
                at: SimTime::ZERO,
                topic_zipf_s: 4.0,
                rate_factor: 1.0,
            }),
            ..base
        };
        let s = generate_schedule(&mut rng(), 8, 6, &early).unwrap();
        let hot = s.iter().filter(|p| p.event.topic().index() == 0).count();
        assert!(hot * 2 > s.len(), "hot-only schedule must be skewed");
        // Invalid hot-phase parameters are rejected even if configured.
        let bad = PubPlan {
            flash: Some(FlashCrowd {
                at: SimTime::from_secs(2),
                topic_zipf_s: 1.0,
                rate_factor: 0.0,
            }),
            ..base
        };
        assert!(generate_schedule(&mut rng(), 8, 6, &bad).is_err());
    }

    #[test]
    fn regular_schedule_round_robins() {
        let s = regular_schedule(
            3,
            2,
            7,
            SimTime::from_secs(1),
            SimTime::from_millis(100),
            32,
        );
        assert_eq!(s.len(), 7);
        assert_eq!(s[0].publisher, 0);
        assert_eq!(s[1].publisher, 1);
        assert_eq!(s[2].publisher, 2);
        assert_eq!(s[3].publisher, 0);
        assert_eq!(s[0].at, SimTime::from_secs(1));
        assert_eq!(s[1].at, SimTime::from_millis(1100));
        // ids unique
        let ids: HashSet<_> = s.iter().map(|p| p.event.id()).collect();
        assert_eq!(ids.len(), 7);
        // topics cycle
        assert_eq!(s[0].event.topic(), TopicId::new(0));
        assert_eq!(s[1].event.topic(), TopicId::new(1));
        assert_eq!(s[2].event.topic(), TopicId::new(0));
    }
}
