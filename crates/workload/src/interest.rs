//! Interest assignment: who subscribes to what.
//!
//! The paper's premise is heterogeneity: "the interest of processes may
//! exhibit big differences" (§3.2). Profiles here control two axes —
//! *topic popularity* (a Zipf law over topics, the standard model for
//! subscription skew) and *per-node appetite* (how many topics each node
//! subscribes to).

use fed_pubsub::TopicId;
use fed_util::dist::{InvalidDistribution, Zipf};
use fed_util::rng::Rng64;
use std::collections::BTreeSet;

/// How many topics a node subscribes to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Appetite {
    /// Every node subscribes to exactly `k` topics.
    Fixed(usize),
    /// Uniform between `lo` and `hi` inclusive.
    Uniform {
        /// Minimum subscriptions per node.
        lo: usize,
        /// Maximum subscriptions per node.
        hi: usize,
    },
    /// A fraction of nodes subscribe to `heavy` topics, the rest to
    /// `light` — the starkest heterogeneity.
    Bimodal {
        /// Fraction of heavy nodes in `[0, 1]`.
        heavy_fraction: f64,
        /// Subscriptions of a heavy node.
        heavy: usize,
        /// Subscriptions of a light node.
        light: usize,
    },
}

/// A full interest assignment: topics per node.
#[derive(Debug, Clone, PartialEq)]
pub struct InterestProfile {
    assignments: Vec<BTreeSet<TopicId>>,
    num_topics: usize,
}

impl InterestProfile {
    /// Generates a profile for `n` nodes over `num_topics` topics with the
    /// given popularity skew (`zipf_s = 0` means all topics equally
    /// popular) and per-node appetite.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidDistribution`] if `num_topics == 0` or `zipf_s` is
    /// invalid.
    pub fn generate<R: Rng64>(
        rng: &mut R,
        n: usize,
        num_topics: usize,
        zipf_s: f64,
        appetite: Appetite,
    ) -> Result<Self, InvalidDistribution> {
        let zipf = Zipf::new(num_topics, zipf_s)?;
        let mut assignments = Vec::with_capacity(n);
        for i in 0..n {
            let want = match appetite {
                Appetite::Fixed(k) => k,
                Appetite::Uniform { lo, hi } => {
                    if lo >= hi {
                        lo
                    } else {
                        lo + rng.range_usize(hi - lo + 1)
                    }
                }
                Appetite::Bimodal {
                    heavy_fraction,
                    heavy,
                    light,
                } => {
                    let cutoff = (n as f64 * heavy_fraction).round() as usize;
                    if i < cutoff {
                        heavy
                    } else {
                        light
                    }
                }
            };
            let want = want.min(num_topics);
            let mut topics = BTreeSet::new();
            // Rejection-sample distinct topics; bounded because
            // want <= num_topics.
            let mut guard = 0;
            while topics.len() < want && guard < 100_000 {
                topics.insert(TopicId::new(zipf.sample(rng) as u32));
                guard += 1;
            }
            // Extremely skewed Zipf can starve: fill deterministically.
            let mut next = 0u32;
            while topics.len() < want {
                topics.insert(TopicId::new(next));
                next += 1;
            }
            assignments.push(topics);
        }
        Ok(InterestProfile {
            assignments,
            num_topics,
        })
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.assignments.len()
    }

    /// `true` when generated for zero nodes.
    pub fn is_empty(&self) -> bool {
        self.assignments.is_empty()
    }

    /// Number of topics in the universe.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Topics node `i` subscribes to.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn topics_of(&self, i: usize) -> &BTreeSet<TopicId> {
        &self.assignments[i]
    }

    /// Nodes subscribed to `topic`.
    pub fn subscribers_of(&self, topic: TopicId) -> Vec<usize> {
        self.assignments
            .iter()
            .enumerate()
            .filter(|(_, set)| set.contains(&topic))
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether node `i` is interested in `topic`.
    pub fn is_interested(&self, i: usize, topic: TopicId) -> bool {
        self.assignments
            .get(i)
            .map(|s| s.contains(&topic))
            .unwrap_or(false)
    }

    /// Total number of (node, topic) subscription pairs.
    pub fn total_subscriptions(&self) -> usize {
        self.assignments.iter().map(BTreeSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_util::rng::Xoshiro256StarStar;

    fn rng() -> Xoshiro256StarStar {
        Xoshiro256StarStar::seed_from_u64(2024)
    }

    #[test]
    fn fixed_appetite_exact_counts() {
        let p = InterestProfile::generate(&mut rng(), 50, 20, 1.0, Appetite::Fixed(3)).unwrap();
        assert_eq!(p.len(), 50);
        for i in 0..50 {
            assert_eq!(p.topics_of(i).len(), 3, "node {i}");
        }
        assert_eq!(p.total_subscriptions(), 150);
    }

    #[test]
    fn appetite_clamped_to_universe() {
        let p = InterestProfile::generate(&mut rng(), 4, 2, 0.0, Appetite::Fixed(10)).unwrap();
        for i in 0..4 {
            assert_eq!(p.topics_of(i).len(), 2);
        }
    }

    #[test]
    fn uniform_appetite_in_bounds() {
        let p =
            InterestProfile::generate(&mut rng(), 200, 50, 0.5, Appetite::Uniform { lo: 1, hi: 8 })
                .unwrap();
        for i in 0..200 {
            let k = p.topics_of(i).len();
            assert!((1..=8).contains(&k), "node {i} has {k}");
        }
    }

    #[test]
    fn bimodal_appetite_split() {
        let p = InterestProfile::generate(
            &mut rng(),
            100,
            64,
            0.0,
            Appetite::Bimodal {
                heavy_fraction: 0.2,
                heavy: 16,
                light: 1,
            },
        )
        .unwrap();
        for i in 0..20 {
            assert_eq!(p.topics_of(i).len(), 16);
        }
        for i in 20..100 {
            assert_eq!(p.topics_of(i).len(), 1);
        }
    }

    #[test]
    fn zipf_skew_concentrates_subscribers() {
        let p = InterestProfile::generate(&mut rng(), 500, 100, 1.5, Appetite::Fixed(2)).unwrap();
        let top = p.subscribers_of(TopicId::new(0)).len();
        let tail = p.subscribers_of(TopicId::new(99)).len();
        assert!(top > tail * 3, "rank 0 ({top}) must dwarf rank 99 ({tail})");
    }

    #[test]
    fn subscribers_of_matches_is_interested() {
        let p = InterestProfile::generate(&mut rng(), 40, 10, 1.0, Appetite::Fixed(2)).unwrap();
        for t in 0..10u32 {
            let topic = TopicId::new(t);
            for i in p.subscribers_of(topic) {
                assert!(p.is_interested(i, topic));
            }
        }
        assert!(!p.is_interested(999, TopicId::new(0)), "oob is false");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = InterestProfile::generate(&mut rng(), 30, 10, 1.0, Appetite::Fixed(2)).unwrap();
        let b = InterestProfile::generate(&mut rng(), 30, 10, 1.0, Appetite::Fixed(2)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(InterestProfile::generate(&mut rng(), 10, 0, 1.0, Appetite::Fixed(1)).is_err());
        assert!(InterestProfile::generate(&mut rng(), 10, 5, -1.0, Appetite::Fixed(1)).is_err());
    }
}
