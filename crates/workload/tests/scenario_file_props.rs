//! Property tests for the declarative scenario-file format.
//!
//! The contract under test: serialization is the *exact* inverse of
//! parsing — `parse(to_toml(spec)) == spec` for every representable
//! [`ScenarioSpec`] — plus strict rejection of malformed files (unknown
//! keys, bad duration units, out-of-range values).

use fed_membership::swim::SwimConfig;
use fed_profile::ProfileSpec;
use fed_sim::network::{
    DelayFault, FaultSchedule, LatencyModel, MobilitySegment, MobilityTrace, NetworkModel,
    OnewayFault, PartitionFault,
};
use fed_sim::{SimDuration, SimTime};
use fed_telemetry::TelemetrySpec;
use fed_trace::TraceSpec;
use fed_workload::scenario_file::{parse_scenario, spec_from_toml, to_toml};
use fed_workload::{
    Appetite, Architecture, ChurnPlan, FlashCrowd, Placement, PubPlan, ScenarioSpec,
};
use proptest::prelude::*;

/// A float with a non-trivial decimal expansion, exercising the
/// shortest-round-trip emitter.
fn fractional(numerator: u32, denominator: u32) -> f64 {
    numerator as f64 / denominator as f64
}

fn arch_strategy() -> impl Strategy<Value = Architecture> {
    (0..Architecture::ALL.len()).prop_map(|i| Architecture::ALL[i])
}

fn placement_strategy() -> impl Strategy<Value = Placement> {
    (0..Placement::ALL.len()).prop_map(|i| Placement::ALL[i])
}

fn appetite_strategy() -> impl Strategy<Value = Appetite> {
    prop_oneof![
        (0usize..=40).prop_map(Appetite::Fixed),
        (0usize..=10, 0usize..=30).prop_map(|(lo, extra)| Appetite::Uniform { lo, hi: lo + extra }),
        (1u32..=1000, 0usize..=40, 0usize..=8).prop_map(|(num, heavy, light)| {
            Appetite::Bimodal {
                heavy_fraction: fractional(num, 1000),
                heavy,
                light,
            }
        }),
    ]
}

fn latency_strategy() -> impl Strategy<Value = LatencyModel> {
    prop_oneof![
        any::<u64>().prop_map(|us| LatencyModel::Constant(SimDuration::from_micros(us))),
        (any::<u64>(), any::<u64>()).prop_map(|(a, b)| LatencyModel::Uniform {
            lo: SimDuration::from_micros(a.min(b)),
            hi: SimDuration::from_micros(a.max(b)),
        }),
        (1u32..=100_000, 0u32..=3000, 0u64..=50_000).prop_map(|(median, sigma, floor)| {
            LatencyModel::LogNormalMs {
                median_ms: fractional(median, 100),
                sigma: fractional(sigma, 1000),
                floor: SimDuration::from_micros(floor),
            }
        }),
    ]
}

fn flash_strategy() -> impl Strategy<Value = Option<FlashCrowd>> {
    prop_oneof![
        Just(None),
        (any::<u64>(), 0u32..=5000, 1u32..=20_000).prop_map(|(at, zipf, rate)| {
            Some(FlashCrowd {
                at: SimTime::from_micros(at),
                topic_zipf_s: fractional(zipf, 1000),
                rate_factor: fractional(rate, 1000),
            })
        }),
    ]
}

fn churn_strategy() -> impl Strategy<Value = Option<ChurnPlan>> {
    prop_oneof![
        Just(None),
        (
            1u32..=100_000,
            1u32..=100_000,
            0u32..=1000,
            any::<u64>(),
            any::<u64>()
        )
            .prop_map(|(session, down, frac, duration, warmup)| {
                Some(ChurnPlan {
                    mean_session_secs: fractional(session, 100),
                    mean_downtime_secs: fractional(down, 100),
                    churning_fraction: fractional(frac, 1000),
                    duration: SimTime::from_micros(duration),
                    warmup: SimTime::from_micros(warmup),
                })
            }),
    ]
}

fn telemetry_strategy() -> impl Strategy<Value = Option<TelemetrySpec>> {
    prop_oneof![
        Just(None),
        (
            1u64..=10_000_000,
            1u32..=100_000,
            1usize..=512,
            1u32..=1_000_000,
            1usize..=512
        )
            .prop_map(|(window, load_hi, load_buckets, lat_hi, lat_buckets)| {
                Some(TelemetrySpec {
                    window: SimDuration::from_micros(window),
                    load_hi: fractional(load_hi, 10),
                    load_buckets,
                    latency_hi_ms: fractional(lat_hi, 100),
                    latency_buckets: lat_buckets,
                })
            }),
    ]
}

fn profile_strategy() -> impl Strategy<Value = Option<ProfileSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(ProfileSpec::default())),
        "[A-Za-z0-9_./-]{1,40}".prop_map(|path| Some(ProfileSpec { trace: Some(path) })),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Option<TraceSpec>> {
    prop_oneof![
        Just(None),
        Just(Some(TraceSpec::default())),
        (0u32..=1000, any::<u64>()).prop_map(|(rate, salt)| {
            Some(TraceSpec {
                sample_rate: fractional(rate, 1000),
                salt,
                export: None,
            })
        }),
        (0u32..=1000, any::<u64>(), "[A-Za-z0-9_./-]{1,40}").prop_map(|(rate, salt, path)| {
            Some(TraceSpec {
                sample_rate: fractional(rate, 1000),
                salt,
                export: Some(path),
            })
        }),
    ]
}

fn faults_strategy() -> impl Strategy<Value = FaultSchedule> {
    // Fault windows must satisfy `at < heal`/`at < until` — the parser
    // rejects degenerate windows, so the round-trip property quantifies
    // over valid ones.
    let partition = prop_oneof![
        Just(None),
        (0u64..=1_000_000_000, 1u64..=1_000_000_000, 0u32..=10_000).prop_map(|(at, len, split)| {
            Some(PartitionFault {
                at: SimTime::from_micros(at),
                heal: SimTime::from_micros(at + len),
                split,
            })
        }),
    ];
    let oneway = prop_oneof![
        Just(None),
        (0u64..=1_000_000_000, 1u64..=1_000_000_000, 0u32..=10_000).prop_map(|(at, len, split)| {
            Some(OnewayFault {
                at: SimTime::from_micros(at),
                until: SimTime::from_micros(at + len),
                split,
            })
        }),
    ];
    let delay = prop_oneof![
        Just(None),
        (
            0u64..=1_000_000_000,
            1u64..=1_000_000_000,
            0u64..=10_000_000
        )
            .prop_map(|(at, len, extra)| {
                Some(DelayFault {
                    at: SimTime::from_micros(at),
                    until: SimTime::from_micros(at + len),
                    extra: SimDuration::from_micros(extra),
                })
            }),
    ];
    (partition, oneway, delay).prop_map(|(partition, oneway, delay)| FaultSchedule {
        partition,
        oneway,
        delay,
    })
}

fn membership_strategy() -> impl Strategy<Value = Option<SwimConfig>> {
    prop_oneof![
        Just(None),
        Just(Some(SwimConfig::standard())),
        (
            1u64..=10_000_000,
            0u64..=10_000_000,
            0usize..=1_000,
            0u64..=100_000_000,
            1usize..=10_000,
            1usize..=1_000
        )
            .prop_map(|(period, timeout, fanout, suspect, piggy, mult)| {
                Some(SwimConfig {
                    probe_period: SimDuration::from_micros(period),
                    probe_timeout: SimDuration::from_micros(timeout),
                    ping_req_fanout: fanout,
                    suspect_timeout: SimDuration::from_micros(suspect),
                    max_piggyback: piggy,
                    gossip_multiplier: mult as u32,
                })
            }),
    ]
}

fn mobility_strategy() -> impl Strategy<Value = Option<MobilityTrace>> {
    // Segment instants must be strictly increasing and, for periodic
    // traces, stay below the period — the parser rejects anything else,
    // so the round-trip property quantifies over valid traces. Strictly
    // increasing positive gaps make the instants a strictly increasing
    // prefix-sum; a period is one more gap past the last segment.
    let segments =
        proptest::collection::vec((1u64..=1_000_000, 0u64..=100_000, any::<bool>()), 1..6);
    prop_oneof![
        Just(None),
        (
            0u32..=10_000,
            segments,
            any::<bool>(),
            0u64..=100_000,
            any::<bool>()
        )
            .prop_map(|(split, raw, periodic, slack, first_at_zero)| {
                let mut at = 0u64;
                let mut segs = Vec::new();
                for (i, (gap, extra, disconnected)) in raw.into_iter().enumerate() {
                    at += if i == 0 && first_at_zero { 0 } else { gap };
                    segs.push(MobilitySegment {
                        at: SimTime::from_micros(at),
                        extra: SimDuration::from_micros(extra),
                        disconnected,
                    });
                }
                let period = periodic.then(|| SimDuration::from_micros(at + 1 + slack));
                Some(MobilityTrace {
                    split,
                    period,
                    segments: segs,
                })
            }),
    ]
}

fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    let head = (
        arch_strategy(),
        1usize..=100_000,
        1usize..=512,
        placement_strategy(),
        any::<bool>(),
        1usize..=10_000,
        0u32..=4000,
        appetite_strategy(),
    );
    // Publication warmup + duration must not overflow the u64 µs
    // horizon arithmetic — the parser rejects such files, so the
    // round-trip property quantifies over valid phases (≈31.7 years
    // each, far beyond any scenario).
    let plan = (
        1u32..=1_000_000,
        0u64..=1_000_000_000_000_000,
        0u32..=4000,
        0usize..=65_536,
        0u64..=1_000_000_000_000_000,
        flash_strategy(),
    );
    let tail = (
        churn_strategy(),
        telemetry_strategy(),
        profile_strategy(),
        latency_strategy(),
        0u32..=999_999u32,
        any::<u64>(),
    );
    let robust = (
        faults_strategy(),
        membership_strategy(),
        trace_strategy(),
        mobility_strategy(),
    );
    (head, plan, tail, robust).prop_map(
        |(
            (arch, n, shards, placement, adaptive_window, num_topics, zipf, appetite),
            (rate, duration, topic_zipf, payload_bytes, warmup, flash),
            (churn, telemetry, profile, latency, loss, seed),
            (faults, membership, trace, mobility),
        )| {
            let loss = fractional(loss, 1_000_000);
            let net = if loss > 0.0 {
                NetworkModel::lossy(latency, loss)
            } else {
                NetworkModel::reliable(latency)
            };
            ScenarioSpec {
                arch,
                n,
                shards,
                placement,
                adaptive_window,
                num_topics,
                zipf_s: fractional(zipf, 1000),
                appetite,
                plan: PubPlan {
                    rate_per_sec: fractional(rate, 1000),
                    duration: SimTime::from_micros(duration),
                    topic_zipf_s: fractional(topic_zipf, 1000),
                    payload_bytes,
                    warmup: SimTime::from_micros(warmup),
                    flash,
                },
                churn,
                telemetry,
                profile,
                trace,
                net,
                membership,
                faults,
                mobility,
                seed,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse ∘ to_toml` is the identity on every representable spec —
    /// architectures, placements, all three appetites and latency
    /// models, optional flash/churn/telemetry, arbitrary u64 durations
    /// and seeds, fractional floats.
    #[test]
    fn spec_to_toml_round_trips_exactly(spec in spec_strategy()) {
        let toml = to_toml(&spec).expect("unpartitioned specs always serialize");
        let reparsed = spec_from_toml(&toml)
            .unwrap_or_else(|e| panic!("serialized spec failed to parse: {e}\n{toml}"));
        prop_assert_eq!(&reparsed, &spec, "round trip diverged for:\n{}", toml);
        // Serialization is deterministic, so a second trip is too.
        prop_assert_eq!(to_toml(&reparsed).unwrap(), toml);
    }

    /// Injecting an unknown key anywhere in a serialized spec makes the
    /// parse fail with a message naming that key.
    #[test]
    fn unknown_keys_are_rejected(spec in spec_strategy(), section_idx in 0usize..9) {
        let toml = to_toml(&spec).unwrap();
        // Insert a bogus key right after the (section_idx % sections)-th
        // section header.
        let headers: Vec<usize> = toml
            .lines()
            .enumerate()
            .filter(|(_, l)| l.starts_with('['))
            .map(|(i, _)| i)
            .collect();
        let target = headers[section_idx % headers.len()];
        let mut lines: Vec<&str> = toml.lines().collect();
        lines.insert(target + 1, "definitely_not_a_knob = 1");
        let mangled = lines.join("\n");
        let err = parse_scenario(&mangled).expect_err("unknown key must be rejected");
        prop_assert!(
            err.message.contains("definitely_not_a_knob"),
            "error does not name the key: {}",
            err
        );
    }
}

/// Malformed-file rejections with fixed, human-auditable inputs.
mod malformed {
    use super::*;

    fn base() -> String {
        to_toml(&ScenarioSpec::fair_gossip(64, 7)).unwrap()
    }

    #[test]
    fn unknown_key_is_rejected() {
        let input = base().replace("nodes = 64", "nodes = 64\nnode_count = 64");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("unknown key `node_count`"), "{err}");
        assert!(err.line.is_some());
    }

    #[test]
    fn bad_duration_unit_is_rejected() {
        let input = base().replace("duration = \"20s\"", "duration = \"20sec\"");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("bad duration"), "{err}");
        assert!(err.message.contains("20sec"), "{err}");
    }

    #[test]
    fn out_of_range_shard_count_is_rejected() {
        for bad in ["shards = 0", "shards = 513", "shards = -3"] {
            let input = base().replace("shards = 1", bad);
            let err = parse_scenario(&input).unwrap_err();
            assert!(err.message.contains("out of range"), "{bad}: {err}");
        }
    }

    #[test]
    fn negative_rate_is_rejected() {
        let input = base().replace("rate_per_sec = 20", "rate_per_sec = -20");
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("strictly positive"), "{err}");
    }

    #[test]
    fn horizon_overflowing_duration_is_rejected() {
        let input = base().replace(
            "duration = \"20s\"",
            "duration = \"18446744073709551615us\"",
        );
        let err = parse_scenario(&input).unwrap_err();
        assert!(err.message.contains("overflows"), "{err}");
        // A huge-but-safe duration still parses.
        let input = base().replace("duration = \"20s\"", "duration = \"1000000000s\"");
        assert!(parse_scenario(&input).is_ok());
    }

    #[test]
    fn missing_required_section_is_rejected() {
        let full = base();
        let without: String = full
            .lines()
            .skip_while(|l| !l.starts_with("[topics]"))
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse_scenario(&without).unwrap_err();
        assert!(err.message.contains("[scenario]"), "{err}");
    }
}
