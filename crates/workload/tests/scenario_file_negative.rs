//! Negative-path corpus for the scenario-file parser.
//!
//! A table of malformed documents, each asserting the **exact line** the
//! parser blames and the key-path substrings its message must carry —
//! the error-reporting contract the docs promise ("strict by design:
//! errors name the line and the key"). The inline unit tests cover the
//! mechanics; this corpus pins the user-facing shape of the diagnoses so
//! a refactor cannot silently degrade them into vague global errors.

use fed_workload::parse_scenario;

/// A complete, valid document the corpus mutates. Every line is
/// flush-left so line numbers are stable and countable.
const BASE: &str = "[scenario]\n\
                    arch = \"fair-gossip\"\n\
                    nodes = 64\n\
                    seed = 7\n\
                    \n\
                    [topics]\n\
                    count = 20\n\
                    \n\
                    [interest]\n\
                    appetite = \"fixed\"\n\
                    topics_per_node = 3\n\
                    \n\
                    [publish]\n\
                    rate_per_sec = 10.0\n\
                    duration = \"5s\"\n";

/// One corpus entry: the appendix added to [`BASE`], the substring of
/// the line the error must point at (`None` for a global error), and
/// the fragments the message must contain.
struct Case {
    name: &'static str,
    appendix: &'static str,
    blamed_line_marker: Option<&'static str>,
    message_contains: &'static [&'static str],
}

const CASES: &[Case] = &[
    Case {
        name: "unknown key in [mobility] is blamed on its own line",
        appendix: "\n[mobility]\nsplit = 16\nspeed = 3\n\n[mobility.seg0]\nat = \"0ms\"\n",
        blamed_line_marker: Some("speed = 3"),
        message_contains: &["unknown key `speed`", "split"],
    },
    Case {
        name: "missing required split is blamed on the section header",
        appendix: "\n[mobility]\nperiod = \"2s\"\n\n[mobility.seg0]\nat = \"0ms\"\n",
        blamed_line_marker: Some("[mobility]"),
        message_contains: &["missing the required key `split`"],
    },
    Case {
        name: "bad duration unit in a segment names the key path",
        appendix: "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"5sec\"\n",
        blamed_line_marker: Some("at = \"5sec\""),
        message_contains: &["bad duration", "\"250us\", \"10ms\", \"2s\""],
    },
    Case {
        name: "non-boolean disconnected is a typed key error",
        appendix:
            "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"0ms\"\ndisconnected = \"yes\"\n",
        blamed_line_marker: Some("disconnected = \"yes\""),
        message_contains: &["disconnected", "expected true or false"],
    },
    Case {
        name: "out-of-range split is blamed on its line",
        appendix: "\n[mobility]\nsplit = 100000000\n\n[mobility.seg0]\nat = \"0ms\"\n",
        blamed_line_marker: Some("split = 100000000"),
        message_contains: &["out of range"],
    },
    Case {
        name: "orphan segment points at the missing parent",
        appendix: "\n[mobility.seg0]\nat = \"0ms\"\n",
        blamed_line_marker: Some("[mobility.seg0]"),
        message_contains: &[
            "unexpected section [mobility.seg0]",
            "parent [mobility] section",
        ],
    },
    Case {
        name: "a numbering gap names the next expected segment",
        appendix: "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"0ms\"\n\n\
                   [mobility.seg2]\nat = \"1s\"\n",
        blamed_line_marker: Some("[mobility.seg2]"),
        message_contains: &["numbered contiguously", "next expected: [mobility.seg1]"],
    },
    Case {
        name: "non-increasing segment times fail trace validation at the header",
        appendix: "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"2s\"\n\n\
                   [mobility.seg1]\nat = \"1s\"\n",
        blamed_line_marker: Some("[mobility]"),
        message_contains: &["[mobility]", "strictly increasing"],
    },
    Case {
        name: "a segment at or past the period fails trace validation",
        appendix: "\n[mobility]\nsplit = 16\nperiod = \"1s\"\n\n[mobility.seg0]\nat = \"1500ms\"\n",
        blamed_line_marker: Some("[mobility]"),
        message_contains: &["[mobility]", "past the period"],
    },
    Case {
        name: "a duplicate [mobility] section is rejected",
        appendix: "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"0ms\"\n\n\
                   [mobility]\nsplit = 8\n",
        blamed_line_marker: None,
        message_contains: &["duplicate section [mobility]"],
    },
    Case {
        name: "a typo'd top-level section lists the valid ones",
        appendix: "\n[mobillity]\nsplit = 16\n",
        blamed_line_marker: Some("[mobillity]"),
        message_contains: &["unknown section [mobillity]", "mobility.seg<k>"],
    },
    Case {
        name: "duplicate keys inside a segment are rejected",
        appendix: "\n[mobility]\nsplit = 16\n\n[mobility.seg0]\nat = \"0ms\"\nat = \"1s\"\n",
        blamed_line_marker: Some("at = \"1s\""),
        message_contains: &["duplicate key \"at\""],
    },
];

/// 1-based line number of the first line containing `marker`.
fn line_of(doc: &str, marker: &str) -> usize {
    doc.lines()
        .position(|l| l.contains(marker))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("marker {marker:?} not found in document"))
}

#[test]
fn base_document_is_valid() {
    parse_scenario(BASE).expect("the corpus base must parse — mutations prove the cases");
}

#[test]
fn malformed_documents_blame_the_exact_line_and_key() {
    for case in CASES {
        let doc = format!("{BASE}{}", case.appendix);
        let err = parse_scenario(&doc)
            .map(|_| ())
            .expect_err(&format!("case {:?} must fail", case.name));
        match case.blamed_line_marker {
            Some(marker) => {
                // The duplicate-key marker appears twice; blame must land
                // on the *second* occurrence, which `line_of` finds when
                // the marker text is unique to it.
                let expected = line_of(&doc, marker);
                assert_eq!(
                    err.line,
                    Some(expected),
                    "case {:?}: expected line {expected}, got {:?} ({err})",
                    case.name,
                    err.line
                );
            }
            None => {
                assert!(
                    err.line.is_some(),
                    "case {:?}: even structural errors carry a line ({err})",
                    case.name
                );
            }
        }
        for needle in case.message_contains {
            assert!(
                err.message.contains(needle),
                "case {:?}: message {:?} lacks {needle:?}",
                case.name,
                err.message
            );
        }
    }
}
