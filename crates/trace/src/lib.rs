//! # fed-trace
//!
//! Deterministic per-event causal dissemination tracing.
//!
//! `fed-telemetry` aggregates per-window load and `fed-profile` times the
//! scheduler, but neither can answer "show me the dissemination tree of
//! event X and who paid for it". This crate closes that gap on top of the
//! [`Tracer`] hook in `fed_sim::exec`: protocols enumerate the
//! application events each network message carries
//! ([`fed_sim::Protocol::trace_payload`]), the kernel reports one
//! [`HopRecord`] per event per send, and a [`ShardTraceBuffer`] collects
//! the records that pass a deterministic sampling filter.
//!
//! ## Determinism
//!
//! * **Sampling** is a pure hash of the packed event id against the
//!   configured rate ([`sampled`]) — no RNG draw, so attaching a tracer
//!   never perturbs the virtual world, and every shard makes the same
//!   keep/drop decision for a given event without coordination.
//! * **Hops are recorded sender-side** at transmission time, so on a
//!   sharded engine each hop is observed exactly once — on the shard
//!   owning the sender — and the union of shard-local buffers equals the
//!   sequential engine's single buffer as a *set* at any shard count.
//! * **Merging** ([`merge_hops`]) sorts by the canonical full-record
//!   order, so the merged buffer is *byte-identical* across engines,
//!   shard counts and placements (gated by `trace_parity.rs` in
//!   `fed-experiments`).
//!
//! ## Analysis
//!
//! [`analyze`] reconstructs each event's delivery tree from its first
//! arrivals and computes per-event metrics — tree depth, hop and
//! duplicate counts, link stress, delivery latency and stretch vs the
//! direct-latency lower bound. [`attribution`] aggregates the
//! event-granular forwarding cost per `(node, topic)`: the paper's
//! fairness index at per-event resolution. [`perfetto_trace_json`]
//! renders sampled trees on the virtual timeline for Perfetto.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use fed_sim::{HopRecord, SimDuration, Tracer};
use std::collections::{BTreeMap, BTreeSet};

/// Tracing configuration, as carried by a scenario's `[trace]` section.
///
/// Presence of the section (even empty) turns tracing on for a scenario
/// run; the fields tune sampling and export.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpec {
    /// Fraction of application events to trace, in `[0, 1]`. Sampling is
    /// per *event*, not per hop: all hops of a kept event are kept, on
    /// every shard, so sampled trees are always complete.
    pub sample_rate: f64,
    /// Salt mixed into the sampling hash, so repeated runs can sample
    /// different (but individually deterministic) event subsets.
    pub salt: u64,
    /// Path to write the Perfetto trace JSON to. `None` lets the runner
    /// pick a default (`traces/TRACE_<scenario>.json`).
    pub export: Option<String>,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            sample_rate: 1.0,
            salt: 0,
            export: None,
        }
    }
}

impl TraceSpec {
    /// Validates a spec, returning it unchanged when sound.
    pub fn checked(spec: TraceSpec) -> Result<TraceSpec, String> {
        if !spec.sample_rate.is_finite() || !(0.0..=1.0).contains(&spec.sample_rate) {
            return Err(format!(
                "trace sample_rate must be a fraction in [0, 1], got {}",
                spec.sample_rate
            ));
        }
        if let Some(path) = &spec.export {
            if path.trim().is_empty() {
                return Err("trace export path must not be empty".to_string());
            }
        }
        Ok(spec)
    }
}

/// SplitMix64 finalizer: the pure hash behind [`sampled`].
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Whether the event with packed id `event` is sampled at `rate`.
///
/// A pure function of `(event, salt, rate)` — no state, no RNG — so every
/// shard, every engine and every run agrees on the kept set. Rates are
/// monotone: the events kept at rate `a` are a subset of those kept at
/// any rate `b ≥ a`.
pub fn sampled(event: u64, salt: u64, rate: f64) -> bool {
    if rate >= 1.0 {
        return true;
    }
    if rate <= 0.0 {
        return false;
    }
    // Compare the hash against a fixed-point threshold. The multiply is
    // exact IEEE-754 double arithmetic on integral-valued operands, so
    // the threshold is identical on every host.
    let threshold = (rate * (u64::MAX as f64)) as u64;
    splitmix64(event ^ salt) <= threshold
}

/// One shard's (or a sequential run's) trace collector.
///
/// Implements [`Tracer`]: keeps every reported hop whose event passes the
/// sampling filter. Buffers merge via [`merge_hops`].
#[derive(Debug, Clone)]
pub struct ShardTraceBuffer {
    sample_rate: f64,
    salt: u64,
    hops: Vec<HopRecord>,
}

impl ShardTraceBuffer {
    /// An empty buffer sampling per `spec`.
    pub fn new(spec: &TraceSpec) -> Self {
        ShardTraceBuffer {
            sample_rate: spec.sample_rate,
            salt: spec.salt,
            hops: Vec::new(),
        }
    }

    /// Number of hops collected so far.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// Whether no hops were collected.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// The collected hops, in recording order.
    pub fn hops(&self) -> &[HopRecord] {
        &self.hops
    }

    /// Consumes the buffer, returning the collected hops.
    pub fn into_hops(self) -> Vec<HopRecord> {
        self.hops
    }
}

impl Tracer for ShardTraceBuffer {
    fn on_hop(&mut self, hop: HopRecord) {
        if sampled(hop.event, self.salt, self.sample_rate) {
            self.hops.push(hop);
        }
    }
}

/// Merges shard-local buffers into the canonical global trace.
///
/// Concatenation followed by a sort in the full-record [`Ord`] — the
/// result depends only on the *set* of recorded hops, never on which
/// shard recorded what or in which order, so a sharded run's merged
/// trace is byte-identical to the sequential engine's (itself passed
/// through this function as a single buffer).
pub fn merge_hops(buffers: impl IntoIterator<Item = ShardTraceBuffer>) -> Vec<HopRecord> {
    let mut all: Vec<HopRecord> = buffers.into_iter().flat_map(|b| b.into_hops()).collect();
    all.sort_unstable();
    all
}

/// The publisher node packed into an event id's high word.
pub fn publisher_of(event: u64) -> u32 {
    (event >> 32) as u32
}

/// The publisher-local sequence number packed into an event id's low word.
pub fn seq_of(event: u64) -> u32 {
    event as u32
}

/// Per-event delivery-tree metrics computed by [`analyze`].
#[derive(Debug, Clone, PartialEq)]
pub struct EventTrace {
    /// Packed event id (see [`publisher_of`], [`seq_of`]).
    pub event: u64,
    /// The event's topic.
    pub topic: u32,
    /// The publishing node.
    pub publisher: u32,
    /// Virtual µs of the event's first transmission.
    pub first_send_us: u64,
    /// Total transmissions carrying the event (delivered or dropped).
    pub hops: u64,
    /// Transmissions the network dropped.
    pub drops: u64,
    /// Distinct nodes the event reached (first arrivals).
    pub deliveries: u64,
    /// Arrivals beyond the first at an already-reached node.
    pub duplicates: u64,
    /// Maximum depth of the delivery tree spanned by first arrivals
    /// (publisher at depth 0).
    pub depth: u32,
    /// Maximum number of transmissions over any single directed link.
    pub link_stress: u32,
    /// Worst first-arrival latency across reached nodes, in µs.
    pub max_latency_us: u64,
    /// Mean first-arrival latency across reached nodes, in µs.
    pub mean_latency_us: f64,
    /// `max_latency_us` over the direct-latency lower bound — how much
    /// the dissemination path stretches the best the network could do.
    pub stretch: f64,
}

/// Reconstructs per-event delivery trees and their metrics from a merged
/// trace.
///
/// `direct_floor` is the network's minimum one-hop latency (the
/// conservative lookahead): the best any dissemination scheme could do
/// for any subscriber, and hence the denominator of `stretch`.
///
/// Results are sorted by packed event id. Pure integer/float arithmetic
/// over the canonical hop order — deterministic for a given trace.
pub fn analyze(hops: &[HopRecord], direct_floor: SimDuration) -> Vec<EventTrace> {
    let mut by_event: BTreeMap<u64, Vec<&HopRecord>> = BTreeMap::new();
    for h in hops {
        by_event.entry(h.event).or_default().push(h);
    }
    let floor_us = direct_floor.as_micros().max(1);
    let mut out = Vec::with_capacity(by_event.len());
    for (event, mut recs) in by_event {
        // Canonical order regardless of the caller's sorting discipline.
        recs.sort_unstable();
        let publisher = publisher_of(event);
        let topic = recs[0].topic;
        let first_send_us = recs.iter().map(|h| h.send_time.as_micros()).min().unwrap();
        let mut drops = 0u64;
        let mut link_count: BTreeMap<(u32, u32), u32> = BTreeMap::new();
        // First arrival per destination: (arrival µs, parent).
        let mut first_arrival: BTreeMap<u32, (u64, u32)> = BTreeMap::new();
        let mut duplicates = 0u64;
        for h in &recs {
            *link_count.entry((h.from, h.to)).or_default() += 1;
            match h.deliver_time {
                None => drops += 1,
                Some(at) => {
                    let at = at.as_micros();
                    if h.to == publisher {
                        // Echo back to the source: a duplicate by
                        // definition, never a tree edge.
                        duplicates += 1;
                    } else {
                        match first_arrival.get(&h.to) {
                            Some(&(best, _)) if best <= at => duplicates += 1,
                            _ => {
                                if first_arrival.insert(h.to, (at, h.from)).is_some() {
                                    duplicates += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Depth over first-arrival edges. A parent either is the
        // publisher (depth 0) or was itself reached earlier (causality:
        // a node cannot forward before receiving), so walking parents
        // terminates; the visited guard bounds pathological traces.
        let mut depth_memo: BTreeMap<u32, u32> = BTreeMap::new();
        let mut max_depth = 0u32;
        for &to in first_arrival.keys().collect::<Vec<_>>() {
            let mut chain = Vec::new();
            let mut cur = to;
            let d = loop {
                if cur == publisher {
                    break 0;
                }
                if let Some(&d) = depth_memo.get(&cur) {
                    break d;
                }
                match first_arrival.get(&cur) {
                    Some(&(_, parent)) if !chain.contains(&cur) => {
                        chain.push(cur);
                        cur = parent;
                    }
                    // Unknown parent (outside the trace) or a cycle in a
                    // malformed trace: root the chain here.
                    _ => break 0,
                }
            };
            for (i, &n) in chain.iter().enumerate() {
                let dn = d + (chain.len() - i) as u32;
                depth_memo.insert(n, dn);
                max_depth = max_depth.max(dn);
            }
        }
        let deliveries = first_arrival.len() as u64;
        let (mut max_lat, mut sum_lat) = (0u64, 0u64);
        for &(at, _) in first_arrival.values() {
            let lat = at.saturating_sub(first_send_us);
            max_lat = max_lat.max(lat);
            sum_lat += lat;
        }
        let mean_latency_us = if deliveries > 0 {
            sum_lat as f64 / deliveries as f64
        } else {
            0.0
        };
        out.push(EventTrace {
            event,
            topic,
            publisher,
            first_send_us,
            hops: recs.len() as u64,
            drops,
            deliveries,
            duplicates,
            depth: max_depth,
            link_stress: link_count.values().copied().max().unwrap_or(0),
            max_latency_us: max_lat,
            mean_latency_us,
            stretch: max_lat as f64 / floor_us as f64,
        });
    }
    out
}

/// One row of the per-node forwarding-cost attribution table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ForwardingCost {
    /// The forwarding node.
    pub node: u32,
    /// The topic whose traffic it carried.
    pub topic: u32,
    /// Distinct events this node forwarded for the topic.
    pub events: u64,
    /// Transmissions (hops) this node originated for the topic.
    pub hops: u64,
    /// Payload bytes this node transmitted for the topic (lost sends
    /// included — a dropped message still cost the sender bandwidth).
    pub bytes: u64,
}

/// Aggregates who forwarded how many bytes for which topics — the
/// event-granular version of the paper's fairness index.
///
/// Rows are sorted by `(node, topic)`; deterministic for a given trace.
pub fn attribution(hops: &[HopRecord]) -> Vec<ForwardingCost> {
    let mut rows: BTreeMap<(u32, u32), (BTreeSet<u64>, u64, u64)> = BTreeMap::new();
    for h in hops {
        let entry = rows.entry((h.from, h.topic)).or_default();
        entry.0.insert(h.event);
        entry.1 += 1;
        entry.2 += h.bytes as u64;
    }
    rows.into_iter()
        .map(|((node, topic), (events, hops, bytes))| ForwardingCost {
            node,
            topic,
            events: events.len() as u64,
            hops,
            bytes,
        })
        .collect()
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a merged trace as Chrome Trace Event JSON (object format,
/// `{"traceEvents": [...]}`) on the **virtual-time** microsecond
/// timeline, loadable in Perfetto (<https://ui.perfetto.dev>) and
/// `chrome://tracing`.
///
/// Track layout: one track (tid) per sampled event, named
/// `event <publisher>#<seq> topic <t>`; each hop is a slice from its
/// send instant to its delivery instant, named `<kind> n<from>→n<to>`
/// (dropped hops render as 1 µs `drop` slices). Reading a track
/// top-to-bottom shows the event's dissemination tree unfolding in
/// virtual time.
pub fn perfetto_trace_json(hops: &[HopRecord], name: &str) -> String {
    let mut by_event: BTreeMap<u64, Vec<&HopRecord>> = BTreeMap::new();
    for h in hops {
        by_event.entry(h.event).or_default().push(h);
    }
    let mut ev: Vec<String> = Vec::new();
    ev.push(format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{{\"name\":\"{}\"}}}}",
        esc(name)
    ));
    for (tid0, (event, recs)) in by_event.iter().enumerate() {
        let tid = tid0 + 1;
        ev.push(format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"event {}#{} topic {}\"}}}}",
            publisher_of(*event),
            seq_of(*event),
            recs[0].topic
        ));
        for h in recs {
            let ts = h.send_time.as_micros();
            let (label, dur) = match h.deliver_time {
                Some(at) => (
                    h.kind.name().to_string(),
                    at.as_micros().saturating_sub(ts).max(1),
                ),
                None => (format!("drop {}", h.kind.name()), 1),
            };
            ev.push(format!(
                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"name\":\"{label} n{}\\u2192n{}\",\
                 \"ts\":{ts},\"dur\":{dur},\"args\":{{\"bytes\":{},\"kind\":{}}}}}",
                h.from,
                h.to,
                h.bytes,
                h.kind.tag()
            ));
        }
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&ev.join(",\n"));
    out.push_str(&format!(
        "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"events\":{},\"hops\":{}}}}}",
        by_event.len(),
        hops.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fed_sim::{HopKind, SimTime};

    fn hop(
        event: u64,
        from: u32,
        to: u32,
        send_us: u64,
        deliver_us: Option<u64>,
        kind: HopKind,
    ) -> HopRecord {
        HopRecord {
            send_time: SimTime::from_micros(send_us),
            from,
            to,
            event,
            topic: 1,
            kind,
            bytes: 100,
            deliver_time: deliver_us.map(SimTime::from_micros),
        }
    }

    #[test]
    fn sampling_is_pure_and_monotone() {
        for event in 0..2000u64 {
            assert!(sampled(event, 7, 1.0));
            assert!(!sampled(event, 7, 0.0));
            assert_eq!(sampled(event, 7, 0.3), sampled(event, 7, 0.3));
            // Rates are monotone: kept at 0.2 ⇒ kept at 0.7.
            if sampled(event, 7, 0.2) {
                assert!(sampled(event, 7, 0.7));
            }
        }
        // The rate is roughly honored.
        let kept = (0..10_000u64).filter(|&e| sampled(e, 0, 0.25)).count();
        assert!((1_500..3_500).contains(&kept), "kept {kept} of 10000");
    }

    #[test]
    fn salt_varies_the_sampled_subset() {
        let a: Vec<u64> = (0..1000).filter(|&e| sampled(e, 1, 0.5)).collect();
        let b: Vec<u64> = (0..1000).filter(|&e| sampled(e, 2, 0.5)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn buffer_filters_by_event() {
        let spec = TraceSpec {
            sample_rate: 0.5,
            salt: 3,
            ..TraceSpec::default()
        };
        let mut buf = ShardTraceBuffer::new(&spec);
        for e in 0..100u64 {
            buf.on_hop(hop(e, 0, 1, 10, Some(20), HopKind::GossipPush));
            buf.on_hop(hop(e, 1, 2, 20, Some(30), HopKind::GossipPush));
        }
        // All-or-nothing per event.
        let mut per_event: BTreeMap<u64, usize> = BTreeMap::new();
        for h in buf.hops() {
            *per_event.entry(h.event).or_default() += 1;
        }
        assert!(per_event.values().all(|&n| n == 2));
        for e in 0..100u64 {
            assert_eq!(per_event.contains_key(&e), sampled(e, 3, 0.5));
        }
    }

    #[test]
    fn merge_is_partition_invariant() {
        let spec = TraceSpec::default();
        let all: Vec<HopRecord> = (0..50u64)
            .map(|i| {
                hop(
                    i % 7,
                    (i % 5) as u32,
                    ((i + 1) % 5) as u32,
                    1000 - i * 3,
                    Some(1005 - i * 3),
                    HopKind::BrokerNotify,
                )
            })
            .collect();
        let mut single = ShardTraceBuffer::new(&spec);
        for h in &all {
            single.on_hop(*h);
        }
        // Split the same set across four buffers in a scrambled order.
        let mut parts: Vec<ShardTraceBuffer> =
            (0..4).map(|_| ShardTraceBuffer::new(&spec)).collect();
        for (i, h) in all.iter().rev().enumerate() {
            parts[i % 4].on_hop(*h);
        }
        assert_eq!(merge_hops([single]), merge_hops(parts));
    }

    #[test]
    fn analyze_reconstructs_tree_metrics() {
        // Publisher 3 (event id 3<<32): 3 → 1 → 2, plus a duplicate
        // 3 → 2 arriving later and one drop 1 → 4.
        let event = 3u64 << 32;
        let hops = vec![
            hop(event, 3, 1, 0, Some(10), HopKind::GossipPush),
            hop(event, 1, 2, 10, Some(25), HopKind::GossipPush),
            hop(event, 3, 2, 0, Some(30), HopKind::GossipPush),
            hop(event, 1, 4, 10, None, HopKind::GossipPush),
        ];
        let traces = analyze(&hops, SimDuration::from_micros(5));
        assert_eq!(traces.len(), 1);
        let t = &traces[0];
        assert_eq!(t.publisher, 3);
        assert_eq!(t.hops, 4);
        assert_eq!(t.drops, 1);
        assert_eq!(t.deliveries, 2, "nodes 1 and 2");
        assert_eq!(t.duplicates, 1, "late 3→2 copy");
        assert_eq!(t.depth, 2, "3 → 1 → 2");
        assert_eq!(t.link_stress, 1);
        assert_eq!(t.max_latency_us, 25);
        assert_eq!(t.stretch, 5.0);
    }

    #[test]
    fn analyze_takes_earliest_arrival_as_tree_edge() {
        let event = 1u64 << 32;
        // Node 2 hears from 0 at t=30 and from 1 at t=20: 1 is the parent.
        let hops = vec![
            hop(event, 1, 2, 5, Some(20), HopKind::TreeEdge),
            hop(event, 0, 2, 5, Some(30), HopKind::TreeEdge),
            hop(event, 1, 0, 1, Some(4), HopKind::TreeToRoot),
        ];
        let traces = analyze(&hops, SimDuration::from_micros(1));
        let t = &traces[0];
        assert_eq!(t.deliveries, 2, "nodes 0 and 2");
        assert_eq!(t.duplicates, 1);
        assert_eq!(t.depth, 1, "both 0 and 2 hang directly off publisher 1");
    }

    #[test]
    fn attribution_aggregates_per_node_topic() {
        let mut hops = vec![
            hop(1, 0, 1, 0, Some(5), HopKind::BrokerNotify),
            hop(2, 0, 1, 1, Some(6), HopKind::BrokerNotify),
            hop(2, 0, 2, 1, None, HopKind::BrokerNotify),
            hop(1, 5, 0, 0, Some(9), HopKind::BrokerIngress),
        ];
        hops[3].topic = 2;
        let rows = attribution(&hops);
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            ForwardingCost {
                node: 0,
                topic: 1,
                events: 2,
                hops: 3,
                bytes: 300,
            }
        );
        assert_eq!(rows[1].node, 5);
        assert_eq!(rows[1].topic, 2);
        assert_eq!(rows[1].events, 1);
    }

    #[test]
    fn spec_validation_rejects_bad_rates() {
        assert!(TraceSpec::checked(TraceSpec::default()).is_ok());
        for rate in [-0.1, 1.1, f64::NAN, f64::INFINITY] {
            let spec = TraceSpec {
                sample_rate: rate,
                ..TraceSpec::default()
            };
            assert!(TraceSpec::checked(spec).is_err(), "rate {rate}");
        }
        let spec = TraceSpec {
            export: Some("  ".to_string()),
            ..TraceSpec::default()
        };
        assert!(TraceSpec::checked(spec).is_err());
    }

    #[test]
    fn perfetto_export_mentions_every_hop() {
        let hops = vec![
            hop(7, 0, 1, 0, Some(5), HopKind::StripeToRoot),
            hop(7, 1, 2, 5, None, HopKind::StripeEdge),
        ];
        let json = perfetto_trace_json(&hops, "unit");
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("stripe-to-root n0"));
        assert!(json.contains("drop stripe-edge n1"));
        assert!(json.contains("event 0#7 topic 1"));
    }
}
