//! News desk: topic hierarchies and data-aware multicast, including the
//! supertopic-bridge problem the paper's §4.2 highlights.
//!
//! ```text
//! cargo run --release --example news_hierarchy
//! ```
//!
//! A newsroom topic tree (`news` → `news/sport` → `news/sport/football`,
//! …) is served by per-topic gossip groups. Desk editors subscribe to
//! whole subtrees; field reporters publish into leaves. A few "wire
//! service" nodes are enrolled as supertopic bridges: they keep the
//! hierarchy connected and pay for it with uncompensated forwarding —
//! measurably.

use fed::baselines::dam::{DamCmd, DamConfig, DamNode, GroupTable};
use fed::core::ledger::RatioSpec;
use fed::pubsub::{Event, EventId, TopicSpace};
use fed::sim::network::NetworkModel;
use fed::sim::{NodeId, SimTime, Simulation};
use std::sync::Arc;

fn main() {
    // Build the topic tree.
    let mut space = TopicSpace::new();
    let news = space.register("news").expect("fresh space");
    let sport = space.register_under("news/sport", news).expect("fresh");
    let football = space
        .register_under("news/sport/football", sport)
        .expect("fresh");
    let politics = space.register_under("news/politics", news).expect("fresh");

    let n = 48;
    // Groups: subscribers per leaf topic plus two bridge nodes (0, 1)
    // enrolled everywhere to keep the hierarchy navigable.
    let mut groups = GroupTable::new();
    let football_members: Vec<NodeId> = (10..20).map(NodeId::new).collect();
    let politics_members: Vec<NodeId> = (20..30).map(NodeId::new).collect();
    let bridges: Vec<NodeId> = vec![NodeId::new(0), NodeId::new(1)];
    groups.insert(
        football,
        football_members.iter().chain(&bridges).copied().collect(),
    );
    groups.insert(
        politics,
        politics_members.iter().chain(&bridges).copied().collect(),
    );

    let groups = Arc::new(groups);
    let space_arc = Arc::new(space.clone());
    let mut sim = Simulation::new(n, NetworkModel::default(), 11, move |id, _| {
        DamNode::new(
            id,
            DamConfig::default(),
            Arc::clone(&groups),
            Arc::clone(&space_arc),
        )
    });

    // Desk editors subscribe: the sport desk takes the whole `news/sport`
    // subtree, the politics desk its own branch.
    for m in &football_members {
        sim.schedule_command(SimTime::ZERO, *m, DamCmd::SubscribeTopic(sport));
    }
    for m in &politics_members {
        sim.schedule_command(SimTime::ZERO, *m, DamCmd::SubscribeTopic(politics));
    }

    // Field reporters publish into the leaves.
    for k in 0..60u32 {
        let (topic, reporter) = if k % 2 == 0 {
            (football, NodeId::new(40))
        } else {
            (politics, NodeId::new(41))
        };
        sim.schedule_command(
            SimTime::from_millis(500 + 100 * k as u64),
            reporter,
            DamCmd::Publish(Event::bare(EventId::new(reporter.as_u32(), k), topic)),
        );
    }

    sim.run_until(SimTime::from_secs(20));

    let spec = RatioSpec::topic_based();
    println!("news hierarchy over data-aware multicast (n={n})");
    println!(
        "{:<22} {:>9} {:>9} {:>8}",
        "role", "forwarded", "delivered", "ratio"
    );
    let show = |label: &str, id: NodeId| {
        let node = sim.node(id).expect("node exists");
        let t = node.ledger().totals();
        println!(
            "{:<22} {:>9} {:>9} {:>8.2}",
            label,
            t.forwarded_msgs,
            t.delivered_events,
            node.ledger().ratio(&spec)
        );
    };
    show("bridge (wire service)", NodeId::new(0));
    show("bridge (wire service)", NodeId::new(1));
    show("sport desk editor", NodeId::new(12));
    show("politics desk editor", NodeId::new(22));
    show("uninvolved node", NodeId::new(45));
    println!();
    println!("the bridges forward both desks' traffic while delivering none of");
    println!("it — the supertopic cost the paper says data-aware multicast");
    println!("pushes onto its hierarchy keepers (§4.2).");
}
