//! Quickstart: a 64-node fair-gossip swarm, one topic, one publisher.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Shows the core API surface: build a simulation, subscribe, publish, run,
//! then inspect deliveries and the fairness ledger.

use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::core::ledger::RatioSpec;
use fed::membership::FullMembership;
use fed::metrics::fairness::ratio_report;
use fed::pubsub::{Event, EventId, TopicId};
use fed::sim::network::{LatencyModel, NetworkModel};
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};

fn main() {
    let n = 64;
    let seed = 2007; // ICDCS 2007
    let config = GossipConfig::fair(6, 16, SimDuration::from_millis(100));
    let net = NetworkModel::reliable(LatencyModel::LogNormalMs {
        median_ms: 40.0,
        sigma: 0.4,
        // A physical propagation floor keeps the sharded engine's
        // conservative lookahead in the millisecond range.
        floor: SimDuration::from_millis(5),
    });

    // Every node runs the fair gossip protocol over a full-membership view.
    let mut sim = Simulation::new(n, net, seed, move |id, _| {
        GossipNode::new(id, config.clone(), FullMembership::new(id, n))
    });

    // Half the swarm subscribes to the "metrics" topic.
    let topic = TopicId::new(0);
    for i in (0..n).step_by(2) {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }

    // Node 1 publishes ten events, one per second.
    for k in 0..10u32 {
        let event = Event::builder(EventId::new(1, k), topic)
            .attr("k", k as i64)
            .payload_bytes(128)
            .build();
        sim.schedule_command(
            SimTime::from_secs(1 + k as u64),
            NodeId::new(1),
            GossipCmd::Publish(event),
        );
    }

    sim.run_until(SimTime::from_secs(15));

    // Inspect: every subscriber delivered all ten, nobody else anything.
    let mut delivered = 0usize;
    let mut spurious = 0usize;
    for (id, node) in sim.nodes() {
        if id.index() % 2 == 0 {
            delivered += usize::from(node.deliveries().len() == 10);
        } else {
            spurious += node.deliveries().len();
        }
    }
    println!("subscribers with all 10 events : {delivered}/{}", n / 2);
    println!("spurious deliveries            : {spurious}");

    let spec = RatioSpec::topic_based();
    let ledgers: Vec<_> = sim.nodes().map(|(_, node)| node.ledger()).collect();
    println!("fairness over contribution/benefit ratios:");
    println!("  {}", ratio_report(ledgers.into_iter(), &spec));
    let total_msgs: u64 = sim.transport_stats_all().iter().map(|s| s.msgs_sent).sum();
    println!("total messages on the wire     : {total_msgs}");
}
