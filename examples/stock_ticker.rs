//! Stock ticker: content-based (expressive) selection with the
//! subscription language, comparing classic and fair gossip side by side.
//!
//! ```text
//! cargo run --release --example stock_ticker
//! ```
//!
//! A market feed publishes quotes with `symbol`, `price` and `volume`
//! attributes. Traders place heterogeneous content filters — some watch a
//! single symbol, some the whole market — which is exactly the setting of
//! the paper's §5.2 (expressive event selection): grouping by interest is
//! impossible, so fairness must come from adapting fanout/message size.

use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::core::ledger::RatioSpec;
use fed::membership::FullMembership;
use fed::metrics::fairness::ratio_report;
use fed::pubsub::{parse_filter, Event, EventId, TopicId};
use fed::sim::network::NetworkModel;
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};
use fed::util::rng::{Rng64, Xoshiro256StarStar};

const SYMBOLS: [&str; 8] = ["FED", "GSP", "EPF", "ICD", "CSR", "PUB", "SUB", "TOP"];

fn build_feed(seed: u64, count: u32) -> Vec<Event> {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    (0..count)
        .map(|k| {
            let symbol = SYMBOLS[rng.range_usize(SYMBOLS.len())];
            let price = 50.0 + rng.next_f64() * 150.0;
            let volume = 100 + rng.range_u64(10_000) as i64;
            Event::builder(EventId::new(0, k), TopicId::new(0))
                .attr("symbol", symbol)
                .attr("price", price)
                .attr("volume", volume)
                .payload_bytes(64)
                .build()
        })
        .collect()
}

fn run_market(config: GossipConfig, label: &str) {
    let n = 96;
    let seed = 7;
    let mut sim = Simulation::new(n, NetworkModel::default(), seed, move |id, _| {
        GossipNode::new(id, config.clone(), FullMembership::new(id, n))
    });

    // Trader profiles, from narrow to market-wide. The parse step is the
    // subscription language working for its living.
    let filters = [
        r#"symbol == "FED""#,
        r#"symbol == "GSP" && price > 120"#,
        r#"price > 180"#,
        r#"volume > 9000"#,
        r#"price < 60 || volume > 9500"#,
        "true", // the index fund watches everything
    ];
    for i in 0..n {
        let source = filters[i % filters.len()];
        let filter = parse_filter(source).expect("example filters parse");
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeContent(filter),
        );
    }

    // The exchange (node 0) publishes the feed at 20 quotes per second.
    for (k, event) in build_feed(seed, 400).into_iter().enumerate() {
        sim.schedule_command(
            SimTime::from_millis(1_000 + 50 * k as u64),
            NodeId::new(0),
            GossipCmd::Publish(event),
        );
    }

    sim.run_until(SimTime::from_secs(30));

    let spec = RatioSpec::expressive();
    let ledgers: Vec<_> = sim.nodes().map(|(_, node)| node.ledger()).collect();
    let report = ratio_report(ledgers, &spec);
    let deliveries: u64 = sim
        .nodes()
        .map(|(_, node)| node.deliveries().len() as u64)
        .sum();
    println!("{label:>15}: deliveries={deliveries:>6}  byte-ratio fairness {report}");
}

fn main() {
    println!("stock ticker under heterogeneous content filters (n=96, 400 quotes)");
    run_market(
        GossipConfig::classic(6, 16, SimDuration::from_millis(100)),
        "classic gossip",
    );
    run_market(
        GossipConfig::fair_expressive(6, 16, SimDuration::from_millis(100)),
        "fair gossip",
    );
    println!("\nthe fair run redistributes byte contribution toward the heavy");
    println!("consumers (index funds) and away from single-symbol traders.");
}
