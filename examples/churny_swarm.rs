//! Churny swarm: selfish peers quit when treated unfairly — the paper's
//! motivating feedback loop (§1), observed live.
//!
//! ```text
//! cargo run --release --example churny_swarm
//! ```
//!
//! Every peer tolerates a contribution/benefit ratio up to a threshold and
//! disconnects beyond it. Under classic gossip the low-benefit peers blow
//! through the threshold and leave; under fair gossip almost everyone
//! stays. The example prints the population over time for both protocols.

use fed::core::behavior::Behavior;
use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::membership::FullMembership;
use fed::pubsub::{Event, EventId, TopicId};
use fed::sim::network::NetworkModel;
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};

fn run_swarm(config: GossipConfig, label: &str) -> Vec<(u64, usize)> {
    let n = 80;
    let tolerance = 25.0;
    let mut sim = Simulation::new(n, NetworkModel::default(), 3, move |id, _| {
        GossipNode::with_behavior(
            id,
            config.clone(),
            FullMembership::new(id, n),
            Behavior::Aggrieved {
                ratio_threshold: tolerance,
                patience_rounds: 50,
            },
        )
    });
    // A fifth of the peers are heavy consumers; the rest dabble.
    let topic = TopicId::new(0);
    let niche = TopicId::new(1);
    for i in 0..n {
        let t = if i % 5 == 0 { topic } else { niche };
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(t),
        );
    }
    // The busy topic gets all the traffic; the publishers are themselves
    // busy-topic consumers (multiples of 5), so publishing cost lands on
    // peers who also benefit.
    for k in 0..600u32 {
        let publisher = (k % 7) * 5;
        sim.schedule_command(
            SimTime::from_millis(1_000 + 50 * k as u64),
            NodeId::new(publisher),
            GossipCmd::Publish(Event::bare(EventId::new(publisher, k / 7), topic)),
        );
    }

    // Drive: every 2 s, let aggrieved users quit.
    let mut series = Vec::new();
    for sec in (2..=40u64).step_by(2) {
        sim.run_until(SimTime::from_secs(sec));
        let quitters: Vec<NodeId> = sim
            .nodes()
            .filter(|(id, node)| {
                sim.is_alive(*id)
                    && node.behavior().wants_to_leave(
                        node.ledger(),
                        &GossipConfig::classic(1, 1, SimDuration::from_millis(100)).spec,
                        node.rounds(),
                    )
            })
            .map(|(id, _)| id)
            .collect();
        for id in quitters {
            sim.schedule_crash(sim.now(), id);
        }
        sim.run_until(SimTime::from_secs(sec) + SimDuration::from_millis(1));
        series.push((sec, sim.alive_ids().len()));
    }
    let survivors = series.last().map(|(_, s)| *s).unwrap_or(0);
    println!("{label:>15}: {survivors}/{n} peers still in the swarm after 40 s");
    series
}

fn main() {
    println!("selfish peers quit above ratio 25 (patience: 50 rounds)\n");
    let classic = run_swarm(
        GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
        "classic gossip",
    );
    let fair = run_swarm(
        GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        "fair gossip",
    );

    println!("\n   t(s)   classic   fair");
    for ((t, c), (_, f)) in classic.iter().zip(&fair) {
        let bar_c = "#".repeat(*c / 4);
        println!("  {t:>4}   {c:>5}     {f:>4}   {bar_c}");
    }
    println!("\nunfairness drains the swarm; fairness keeps it intact (paper §1).");
}
