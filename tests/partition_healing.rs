//! Network partitions: gossip's signature resilience property ("a
//! replicated database can converge to a consistent state using a gossip
//! protocol, despite temporary partitions", paper §4.2) — verified for
//! both the classic and the fair protocol.

use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::membership::FullMembership;
use fed::pubsub::{Event, EventId, TopicId};
use fed::sim::network::{LatencyModel, NetworkModel};
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};

type Node = GossipNode<FullMembership>;

fn build(n: usize, mut cfg: GossipConfig, seed: u64) -> Simulation<Node> {
    // Long TTL so events published during the partition survive until heal.
    cfg.ttl_rounds = 60;
    let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
    Simulation::new(n, net, seed, move |id, _| {
        GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
    })
}

fn run_partition_scenario(cfg: GossipConfig, seed: u64) -> (usize, usize) {
    let n = 48;
    let mut sim = build(n, cfg, seed);
    let topic = TopicId::new(0);
    for i in 0..n {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    // Partition into two halves at t = 1 s.
    sim.run_until(SimTime::from_secs(1));
    let groups: Vec<u32> = (0..n).map(|i| u32::from(i >= n / 2)).collect();
    sim.network_mut().partition(groups);
    // Publish on both sides during the partition.
    let left_event = Event::bare(EventId::new(0, 1), topic);
    let right_event = Event::bare(EventId::new(40, 1), topic);
    sim.schedule_command(
        SimTime::from_millis(1_500),
        NodeId::new(0),
        GossipCmd::Publish(left_event.clone()),
    );
    sim.schedule_command(
        SimTime::from_millis(1_500),
        NodeId::new(40),
        GossipCmd::Publish(right_event.clone()),
    );
    // While split: each side sees only its own event.
    sim.run_until(SimTime::from_secs(3));
    let crossed = sim
        .nodes()
        .filter(|(id, node)| {
            (id.index() < n / 2 && node.has_delivered(right_event.id()))
                || (id.index() >= n / 2 && node.has_delivered(left_event.id()))
        })
        .count();
    assert_eq!(crossed, 0, "nothing crosses an active partition");
    // Heal and let gossip reconcile.
    sim.network_mut().heal();
    sim.run_until(SimTime::from_secs(8));
    let got_left = sim
        .nodes()
        .filter(|(_, node)| node.has_delivered(left_event.id()))
        .count();
    let got_right = sim
        .nodes()
        .filter(|(_, node)| node.has_delivered(right_event.id()))
        .count();
    (got_left, got_right)
}

#[test]
fn classic_gossip_heals_partitions() {
    let (l, r) = run_partition_scenario(
        GossipConfig::classic(6, 16, SimDuration::from_millis(100)),
        81,
    );
    assert_eq!(l, 48, "left event reaches everyone after heal");
    assert_eq!(r, 48, "right event reaches everyone after heal");
}

#[test]
fn fair_gossip_heals_partitions() {
    let (l, r) =
        run_partition_scenario(GossipConfig::fair(6, 16, SimDuration::from_millis(100)), 82);
    assert_eq!(l, 48, "left event reaches everyone after heal");
    assert_eq!(r, 48, "right event reaches everyone after heal");
}
