//! Replay guarantees: identical seeds yield bit-identical results across
//! the whole stack — the property all experiment tables depend on.

use fed::experiments::{arch, fig1, fig4};

#[test]
fn fig1_tables_replay_exactly() {
    let a = fig1::run(32, 99);
    let b = fig1::run(32, 99);
    assert_eq!(a.table.to_string(), b.table.to_string());
    assert_eq!(a.classic_jain, b.classic_jain);
    assert_eq!(a.fair_jain, b.fair_jain);
}

#[test]
fn fig1_different_seeds_differ() {
    let a = fig1::run(32, 1);
    let b = fig1::run(32, 2);
    // Astronomically unlikely to coincide exactly.
    assert_ne!(a.classic_jain, b.classic_jain);
}

#[test]
fn fig4_series_replay_exactly() {
    let a = fig4::run(24, &[16, 24], 7);
    let b = fig4::run(24, &[16, 24], 7);
    assert_eq!(a.fanout_series, b.fanout_series);
    assert_eq!(a.scale_series, b.scale_series);
}

#[test]
fn arch_comparison_replays_exactly() {
    let a = arch::run(32, 11);
    let b = arch::run(32, 11);
    assert_eq!(a.table.to_string(), b.table.to_string());
}
