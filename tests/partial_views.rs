//! Gossip over *partial views* instead of the full-membership oracle:
//! the `GossipNode<S>` generic instantiated with `CyclonState`.
//!
//! The paper notes that uniform partner selection "usually requires full
//! knowledge of the system" and points to peer-sampling protocols as the
//! practical substitute (§4.2). These tests show the dissemination and
//! fairness machinery works unchanged over bounded views.

use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::membership::CyclonState;
use fed::pubsub::{Event, EventId, TopicId};
use fed::sim::network::{LatencyModel, NetworkModel};
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};

type ViewNode = GossipNode<CyclonState>;

fn build(n: usize, view_size: usize, cfg: GossipConfig, seed: u64) -> Simulation<ViewNode> {
    let net = NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(10)));
    // Bootstrap with half the capacity (ring successors); the other half
    // fills up as gossip senders are learned via `note_peer`.
    let boot = (view_size / 2).max(2);
    Simulation::new(n, net, seed, move |id, _| {
        let mut state = CyclonState::new(id, view_size, view_size / 2);
        state.bootstrap((1..=boot).map(|d| NodeId::new(((id.index() + d) % n) as u32)));
        GossipNode::new(id, cfg.clone(), state)
    })
}

#[test]
fn dissemination_works_over_bounded_views() {
    let n = 96;
    let mut sim = build(
        n,
        12,
        GossipConfig::classic(6, 16, SimDuration::from_millis(100)),
        71,
    );
    let topic = TopicId::new(0);
    for i in 0..n {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    for k in 0..15u32 {
        sim.schedule_command(
            SimTime::from_millis(500 + 200 * k as u64),
            NodeId::new(k * 11 % n as u32),
            GossipCmd::Publish(Event::bare(EventId::new(k * 11 % n as u32, k), topic)),
        );
    }
    sim.run_until(SimTime::from_secs(15));
    let complete = sim
        .nodes()
        .filter(|(_, node)| node.deliveries().len() == 15)
        .count();
    assert!(
        complete as f64 >= 0.99 * n as f64,
        "bounded views deliver: {complete}/{n}"
    );
}

#[test]
fn fair_adaptation_works_over_bounded_views() {
    let n = 96;
    let mut sim = build(
        n,
        12,
        GossipConfig::fair(6, 16, SimDuration::from_millis(100)),
        72,
    );
    // Only a quarter of peers are interested.
    let topic = TopicId::new(0);
    for i in 0..n / 4 {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    for k in 0..120u32 {
        sim.schedule_command(
            SimTime::from_millis(500 + 100 * k as u64),
            NodeId::new(2),
            GossipCmd::Publish(Event::bare(EventId::new(2, k), topic)),
        );
    }
    sim.run_until(SimTime::from_secs(20));
    // Reliability for the interested set.
    let complete = (0..n / 4)
        .filter(|&i| {
            sim.node(NodeId::new(i as u32))
                .expect("node exists")
                .deliveries()
                .len()
                == 120
        })
        .count();
    assert!(
        complete >= (n / 4) * 95 / 100,
        "interested peers delivered: {complete}/{}",
        n / 4
    );
    // Work concentrates on the benefiting quarter.
    let work = |range: std::ops::Range<usize>| -> f64 {
        let total: u64 = range
            .clone()
            .map(|i| {
                sim.node(NodeId::new(i as u32))
                    .expect("node exists")
                    .ledger()
                    .totals()
                    .forwarded_msgs
            })
            .sum();
        total as f64 / range.len() as f64
    };
    let interested_work = work(0..n / 4);
    let uninterested_work = work(n / 4..n);
    assert!(
        interested_work > 2.0 * uninterested_work,
        "interested {interested_work} vs uninterested {uninterested_work}"
    );
}

#[test]
fn views_learn_senders() {
    // note_peer wiring: receiving gossip teaches the view about senders,
    // so connectivity improves beyond the bootstrap ring.
    let n = 32;
    let mut sim = build(
        n,
        8,
        GossipConfig::classic(4, 8, SimDuration::from_millis(100)),
        73,
    );
    let topic = TopicId::new(0);
    for i in 0..n {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    for k in 0..30u32 {
        sim.schedule_command(
            SimTime::from_millis(300 + 100 * k as u64),
            NodeId::new(k % n as u32),
            GossipCmd::Publish(Event::bare(EventId::new(k % n as u32, k), topic)),
        );
    }
    sim.run_until(SimTime::from_secs(10));
    // At least one node knows a peer outside its original bootstrap ring
    // (successors 1..=4 for capacity 8).
    let learned = sim.nodes().any(|(id, node)| {
        node.sampler().view().ids().iter().any(|p| {
            let fwd = (p.index() + n - id.index()) % n;
            fwd == 0 || fwd > 4 // outside the successor window
        })
    });
    assert!(learned, "views must grow beyond the bootstrap ring");
}
