//! End-to-end integration: workload generation → simulation → metrics,
//! through the `fed` facade, exercising the full crate stack together.

use fed::core::behavior::Behavior;
use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::core::ledger::RatioSpec;
use fed::membership::FullMembership;
use fed::metrics::delivery::DeliveryAudit;
use fed::metrics::fairness::ratio_report;
use fed::pubsub::TopicId;
use fed::sim::network::{LatencyModel, NetworkModel};
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};
use fed::util::rng::Xoshiro256StarStar;
use fed::workload::interest::{Appetite, InterestProfile};
use fed::workload::pubs::{generate_schedule, PubPlan};

type Node = GossipNode<FullMembership>;

struct Setup {
    sim: Simulation<Node>,
    profile: InterestProfile,
    schedule: Vec<fed::workload::pubs::Publication>,
}

fn build(n: usize, cfg: GossipConfig, seed: u64) -> Setup {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let profile =
        InterestProfile::generate(&mut rng, n, 12, 1.0, Appetite::Uniform { lo: 1, hi: 6 })
            .expect("valid parameters");
    let plan = PubPlan {
        rate_per_sec: 15.0,
        duration: SimTime::from_secs(12),
        topic_zipf_s: 1.0,
        payload_bytes: 48,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    let schedule = generate_schedule(&mut rng, n, 12, &plan).expect("valid plan");
    let net = NetworkModel::reliable(LatencyModel::Uniform {
        lo: SimDuration::from_millis(5),
        hi: SimDuration::from_millis(40),
    });
    let mut sim = Simulation::new(n, net, seed, move |id, _| {
        GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
    });
    for i in 0..n {
        for &t in profile.topics_of(i) {
            sim.schedule_command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(t),
            );
        }
    }
    for p in &schedule {
        sim.schedule_command(
            p.at,
            NodeId::new(p.publisher as u32),
            GossipCmd::Publish(p.event.clone()),
        );
    }
    Setup {
        sim,
        profile,
        schedule,
    }
}

fn audit(setup: &Setup) -> DeliveryAudit {
    let mut audit = DeliveryAudit::new();
    for p in &setup.schedule {
        audit.expect(
            p.event.id(),
            p.at,
            setup.profile.subscribers_of(p.event.topic()),
        );
    }
    for (id, node) in setup.sim.nodes() {
        for (eid, rec) in node.deliveries() {
            audit.record(*eid, id.index(), rec.at);
        }
    }
    audit
}

#[test]
fn full_stack_delivers_reliably_and_selectively() {
    let mut setup = build(
        80,
        GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        1001,
    );
    setup.sim.run_until(SimTime::from_secs(18));
    let a = audit(&setup);
    assert!(a.num_events() > 100, "workload produced {}", a.num_events());
    assert!(a.reliability() > 0.999, "reliability {}", a.reliability());
    assert_eq!(a.spurious(), 0, "ISINTERESTED never violated");
    assert!(a.atomicity() > 0.99, "atomicity {}", a.atomicity());
    // Latency is bounded by a handful of gossip rounds.
    let lat = a.latency_ms();
    assert!(lat.median().expect("deliveries exist") < 1_500.0);
}

#[test]
fn fair_beats_classic_on_the_same_workload() {
    let spec = RatioSpec::topic_based();
    let mut classic = build(
        80,
        GossipConfig::classic(8, 16, SimDuration::from_millis(100)),
        2002,
    );
    classic.sim.run_until(SimTime::from_secs(18));
    let mut fair = build(
        80,
        GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        2002,
    );
    fair.sim.run_until(SimTime::from_secs(18));

    let classic_fairness = ratio_report(classic.sim.nodes().map(|(_, p)| p.ledger()), &spec);
    let fair_fairness = ratio_report(fair.sim.nodes().map(|(_, p)| p.ledger()), &spec);
    assert!(
        fair_fairness.jain > classic_fairness.jain + 0.1,
        "fair {} vs classic {}",
        fair_fairness.jain,
        classic_fairness.jain
    );
    assert!(audit(&classic).reliability() > 0.999);
    assert!(audit(&fair).reliability() > 0.999);
}

#[test]
fn free_riders_cannot_crash_reliability() {
    let n = 80;
    let mut rng = Xoshiro256StarStar::seed_from_u64(3003);
    let profile =
        InterestProfile::generate(&mut rng, n, 12, 1.0, Appetite::Fixed(2)).expect("valid");
    let plan = PubPlan {
        rate_per_sec: 10.0,
        duration: SimTime::from_secs(10),
        topic_zipf_s: 0.5,
        payload_bytes: 32,
        warmup: SimTime::from_secs(1),
        flash: None,
    };
    let schedule = generate_schedule(&mut rng, n, 12, &plan).expect("valid");
    let cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
    let mut sim = Simulation::new(n, NetworkModel::default(), 3003, move |id, _| {
        let behavior = if id.index() % 5 == 0 {
            Behavior::FreeRider {
                fanout_cap: 0.5,
                advertised_benefit_scale: 0.1,
            }
        } else {
            Behavior::Honest
        };
        GossipNode::with_behavior(id, cfg.clone(), FullMembership::new(id, n), behavior)
    });
    for i in 0..n {
        for &t in profile.topics_of(i) {
            sim.schedule_command(
                SimTime::ZERO,
                NodeId::new(i as u32),
                GossipCmd::SubscribeTopic(t),
            );
        }
    }
    for p in &schedule {
        sim.schedule_command(
            p.at,
            NodeId::new(p.publisher as u32),
            GossipCmd::Publish(p.event.clone()),
        );
    }
    sim.run_until(SimTime::from_secs(16));
    let mut a = DeliveryAudit::new();
    for p in &schedule {
        a.expect(p.event.id(), p.at, profile.subscribers_of(p.event.topic()));
    }
    for (id, node) in sim.nodes() {
        for (eid, rec) in node.deliveries() {
            a.record(*eid, id.index(), rec.at);
        }
    }
    assert!(
        a.reliability() > 0.98,
        "20% free riders must not sink dissemination: {}",
        a.reliability()
    );
}

#[test]
fn churned_nodes_recover_and_catch_new_events() {
    let mut setup = build(
        60,
        GossipConfig::fair(8, 16, SimDuration::from_millis(100)),
        4004,
    );
    // Crash a third of the population mid-run, rejoin them later.
    for i in 0..20u32 {
        setup
            .sim
            .schedule_crash(SimTime::from_secs(4), NodeId::new(i));
        setup
            .sim
            .schedule_join(SimTime::from_secs(8), NodeId::new(i));
        // Rejoined nodes need their subscriptions re-issued (fresh state).
        for &t in setup.profile.topics_of(i as usize) {
            setup.sim.schedule_command(
                SimTime::from_secs(8),
                NodeId::new(i),
                GossipCmd::SubscribeTopic(t),
            );
        }
    }
    setup.sim.run_until(SimTime::from_secs(20));
    // Events published after the rejoin must reach rejoined subscribers.
    let late_events: Vec<_> = setup
        .schedule
        .iter()
        .filter(|p| p.at > SimTime::from_secs(9))
        .collect();
    assert!(!late_events.is_empty());
    let mut missed = 0usize;
    let mut expected = 0usize;
    for p in &late_events {
        for sub in setup.profile.subscribers_of(p.event.topic()) {
            if sub < 20 {
                expected += 1;
                let node = setup.sim.node(NodeId::new(sub as u32)).expect("exists");
                if !node.has_delivered(p.event.id()) {
                    missed += 1;
                }
            }
        }
    }
    assert!(expected > 0, "some late events target rejoined nodes");
    let miss_rate = missed as f64 / expected as f64;
    assert!(
        miss_rate < 0.05,
        "rejoined nodes must catch up: missed {missed}/{expected}"
    );
}

#[test]
fn message_counts_match_between_engine_and_ledgers() {
    // Cross-crate consistency: the engine's transport stats and the
    // protocol's own fairness ledger must agree on messages sent.
    let mut setup = build(
        40,
        GossipConfig::classic(6, 16, SimDuration::from_millis(100)),
        5005,
    );
    setup.sim.run_until(SimTime::from_secs(18));
    for (id, node) in setup.sim.nodes() {
        let ledger = node.ledger().totals();
        let transport = setup.sim.transport_stats(id);
        assert_eq!(
            ledger.forwarded_msgs, transport.msgs_sent,
            "{id}: ledger vs engine"
        );
    }
}

#[test]
fn topic_isolation_holds_across_the_stack() {
    // Publish on one topic only; subscribers of other topics stay silent.
    let n = 30;
    let cfg = GossipConfig::classic(5, 8, SimDuration::from_millis(100));
    let mut sim: Simulation<Node> =
        Simulation::new(n, NetworkModel::default(), 6006, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
        });
    for i in 0..n {
        let topic = TopicId::new((i % 3) as u32);
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }
    for k in 0..20u32 {
        sim.schedule_command(
            SimTime::from_millis(500 + 100 * k as u64),
            NodeId::new(0),
            GossipCmd::Publish(fed::pubsub::Event::bare(
                fed::pubsub::EventId::new(0, k),
                TopicId::new(0),
            )),
        );
    }
    sim.run_until(SimTime::from_secs(10));
    for (id, node) in sim.nodes() {
        if id.index() % 3 == 0 {
            assert_eq!(node.deliveries().len(), 20, "{id}");
        } else {
            assert!(node.deliveries().is_empty(), "{id}");
        }
    }
}
