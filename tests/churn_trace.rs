//! Drives the gossip protocol with a generated churn trace
//! (`fed_workload::churn`): sessions and downtimes drawn from exponential
//! distributions, a third of the population flapping. Dissemination to the
//! *stable* majority must shrug it off.

use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
use fed::membership::FullMembership;
use fed::pubsub::{Event, EventId, TopicId};
use fed::sim::network::NetworkModel;
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};
use fed::util::rng::Xoshiro256StarStar;
use fed::workload::churn::{generate_churn, ChurnAction, ChurnPlan};

#[test]
fn stable_majority_survives_generated_churn() {
    let n = 72;
    let churners = n / 3; // plan default: 1/3 of the population
    let cfg = GossipConfig::fair(8, 16, SimDuration::from_millis(100));
    let mut sim: Simulation<GossipNode<FullMembership>> =
        Simulation::new(n, NetworkModel::default(), 91, move |id, _| {
            GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
        });
    let topic = TopicId::new(0);
    for i in 0..n {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            GossipCmd::SubscribeTopic(topic),
        );
    }

    // Generated churn trace over nodes 0..churners.
    let plan = ChurnPlan {
        mean_session_secs: 8.0,
        mean_downtime_secs: 4.0,
        churning_fraction: churners as f64 / n as f64,
        duration: SimTime::from_secs(30),
        warmup: SimTime::from_secs(2),
    };
    let mut rng = Xoshiro256StarStar::seed_from_u64(91);
    let trace = generate_churn(&mut rng, n, &plan).expect("valid plan");
    assert!(!trace.is_empty(), "plan must generate churn");
    for ev in &trace {
        match ev.action {
            ChurnAction::Crash => sim.schedule_crash(ev.at, NodeId::new(ev.node as u32)),
            ChurnAction::Join => {
                sim.schedule_join(ev.at, NodeId::new(ev.node as u32));
                // Fresh state: re-subscribe on rejoin.
                sim.schedule_command(
                    ev.at,
                    NodeId::new(ev.node as u32),
                    GossipCmd::SubscribeTopic(topic),
                );
            }
        }
    }

    // Stable nodes publish throughout the churn storm.
    let events: Vec<Event> = (0..40u32)
        .map(|k| Event::bare(EventId::new(churners as u32 + (k % 10), k), topic))
        .collect();
    for (k, e) in events.iter().enumerate() {
        sim.schedule_command(
            SimTime::from_millis(2_000 + 700 * k as u64),
            NodeId::new(e.id().publisher()),
            GossipCmd::Publish(e.clone()),
        );
    }

    sim.run_until(SimTime::from_secs(40));

    // Every stable node must have delivered every event.
    let mut misses = 0usize;
    for i in churners..n {
        let node = sim.node(NodeId::new(i as u32)).expect("exists");
        for e in &events {
            if !node.has_delivered(e.id()) {
                misses += 1;
            }
        }
    }
    let expected = (n - churners) * events.len();
    let reliability = 1.0 - misses as f64 / expected as f64;
    assert!(
        reliability > 0.999,
        "stable nodes missed {misses}/{expected} deliveries under churn"
    );
}
