//! Every baseline architecture must satisfy the selective-dissemination
//! contract of the paper's §2 on a common workload: all interested peers
//! deliver (within the system's reliability envelope), no uninterested peer
//! ever delivers, and delivery happens at most once.

use fed::baselines::broker::{BrokerCmd, BrokerNode};
use fed::baselines::dam::{DamCmd, DamConfig, DamNode, GroupTable};
use fed::baselines::dks::{DksCmd, DksConfig, DksNode};
use fed::baselines::scribe::{ScribeCmd, ScribeNode};
use fed::baselines::splitstream::{Forest, SplitStreamNode, StripeCmd};
use fed::dht::DhtNetwork;
use fed::pubsub::{Event, EventId, TopicId, TopicSpace};
use fed::sim::network::{LatencyModel, NetworkModel};
use fed::sim::{NodeId, SimDuration, SimTime, Simulation};
use std::sync::Arc;

const N: usize = 48;
const TOPICS: u32 = 4;

/// node i subscribes to topic i % TOPICS.
fn topic_of(i: usize) -> TopicId {
    TopicId::new((i % TOPICS as usize) as u32)
}

fn events() -> Vec<(SimTime, usize, Event)> {
    (0..24u32)
        .map(|k| {
            let topic = TopicId::new(k % TOPICS);
            let publisher = (k as usize * 7) % N;
            (
                SimTime::from_millis(500 + 100 * k as u64),
                publisher,
                Event::bare(EventId::new(publisher as u32, k), topic),
            )
        })
        .collect()
}

fn net() -> NetworkModel {
    NetworkModel::reliable(LatencyModel::Constant(SimDuration::from_millis(8)))
}

fn groups() -> Arc<GroupTable> {
    let mut g = GroupTable::new();
    for t in 0..TOPICS {
        let topic = TopicId::new(t);
        g.insert(
            topic,
            (0..N)
                .filter(|&i| topic_of(i) == topic)
                .map(|i| NodeId::new(i as u32))
                .collect(),
        );
    }
    Arc::new(g)
}

/// Checks the delivery contract; returns (delivered, expected).
fn check_contract<I>(deliveries: I) -> (usize, usize)
where
    I: Fn(usize, EventId) -> bool,
{
    let mut delivered = 0usize;
    let mut expected = 0usize;
    for (_, _, e) in events() {
        for i in 0..N {
            if topic_of(i) == e.topic() {
                expected += 1;
                if deliveries(i, e.id()) {
                    delivered += 1;
                }
            } else {
                assert!(
                    !deliveries(i, e.id()),
                    "node {i} delivered uninteresting event {}",
                    e.id()
                );
            }
        }
    }
    (delivered, expected)
}

#[test]
fn broker_contract() {
    let mut sim = Simulation::new(N, net(), 1, |id, _| BrokerNode::new(id, NodeId::new(0)));
    for i in 0..N {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            BrokerCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        sim.schedule_command(at, NodeId::new(publisher as u32), BrokerCmd::Publish(e));
    }
    sim.run_until(SimTime::from_secs(10));
    let (delivered, expected) = check_contract(|i, id| {
        sim.node(NodeId::new(i as u32))
            .expect("exists")
            .deliveries()
            .contains(id)
    });
    assert_eq!(delivered, expected, "broker is fully reliable when alive");
}

#[test]
fn scribe_contract() {
    let dht = Arc::new(DhtNetwork::build(N));
    let mut sim = Simulation::new(N, net(), 2, move |id, _| {
        ScribeNode::new(id, Arc::clone(&dht))
    });
    for i in 0..N {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            ScribeCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        sim.schedule_command(at, NodeId::new(publisher as u32), ScribeCmd::Publish(e));
    }
    sim.run_until(SimTime::from_secs(10));
    let (delivered, expected) = check_contract(|i, id| {
        sim.node(NodeId::new(i as u32))
            .expect("exists")
            .deliveries()
            .contains(id)
    });
    assert_eq!(delivered, expected, "trees deliver deterministically");
}

#[test]
fn dks_contract() {
    let dht = Arc::new(DhtNetwork::build(N));
    let groups = groups();
    let cfg = DksConfig {
        group_fanout: 6,
        seeds: 3,
    };
    let mut sim = Simulation::new(N, net(), 3, move |id, _| {
        DksNode::new(id, cfg, Arc::clone(&dht), Arc::clone(&groups))
    });
    for i in 0..N {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            DksCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        sim.schedule_command(at, NodeId::new(publisher as u32), DksCmd::Publish(e));
    }
    sim.run_until(SimTime::from_secs(10));
    let (delivered, expected) = check_contract(|i, id| {
        sim.node(NodeId::new(i as u32))
            .expect("exists")
            .deliveries()
            .contains(id)
    });
    let reliability = delivered as f64 / expected as f64;
    assert!(
        reliability > 0.99,
        "group epidemic with fanout 6 of 12: {reliability}"
    );
}

#[test]
fn dam_contract() {
    let groups = groups();
    let space = Arc::new(TopicSpace::flat(TOPICS as usize));
    let mut sim = Simulation::new(N, net(), 4, move |id, _| {
        DamNode::new(
            id,
            DamConfig::default(),
            Arc::clone(&groups),
            Arc::clone(&space),
        )
    });
    for i in 0..N {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            DamCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        sim.schedule_command(at, NodeId::new(publisher as u32), DamCmd::Publish(e));
    }
    sim.run_until(SimTime::from_secs(12));
    let (delivered, expected) = check_contract(|i, id| {
        sim.node(NodeId::new(i as u32))
            .expect("exists")
            .deliveries()
            .contains(id)
    });
    let reliability = delivered as f64 / expected as f64;
    assert!(reliability > 0.99, "per-topic gossip: {reliability}");
}

#[test]
fn splitstream_contract() {
    let forest = Arc::new(Forest::build(N, 4, 4));
    let mut sim = Simulation::new(N, net(), 5, move |id, _| {
        SplitStreamNode::new(id, Arc::clone(&forest))
    });
    for i in 0..N {
        sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            StripeCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        sim.schedule_command(at, NodeId::new(publisher as u32), StripeCmd::Publish(e));
    }
    sim.run_until(SimTime::from_secs(10));
    let (delivered, expected) = check_contract(|i, id| {
        sim.node(NodeId::new(i as u32))
            .expect("exists")
            .deliveries()
            .contains(id)
    });
    assert_eq!(delivered, expected, "forest broadcast reaches everyone");
}

#[test]
fn baselines_disagree_on_fairness_but_agree_on_delivery() {
    // Meta-check used by T-ARCH: delivery contracts hold for all systems
    // (verified above), while their per-node work distributions differ
    // wildly. Here: Scribe concentrates forwarding far more than DAM.
    let dht = Arc::new(DhtNetwork::build(N));
    let mut scribe_sim = Simulation::new(N, net(), 6, move |id, _| {
        ScribeNode::new(id, Arc::clone(&dht))
    });
    let groups = groups();
    let space = Arc::new(TopicSpace::flat(TOPICS as usize));
    let mut dam_sim = Simulation::new(N, net(), 6, move |id, _| {
        DamNode::new(
            id,
            DamConfig::default(),
            Arc::clone(&groups),
            Arc::clone(&space),
        )
    });
    for i in 0..N {
        scribe_sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            ScribeCmd::SubscribeTopic(topic_of(i)),
        );
        dam_sim.schedule_command(
            SimTime::ZERO,
            NodeId::new(i as u32),
            DamCmd::SubscribeTopic(topic_of(i)),
        );
    }
    for (at, publisher, e) in events() {
        scribe_sim.schedule_command(
            at,
            NodeId::new(publisher as u32),
            ScribeCmd::Publish(e.clone()),
        );
        dam_sim.schedule_command(at, NodeId::new(publisher as u32), DamCmd::Publish(e));
    }
    scribe_sim.run_until(SimTime::from_secs(12));
    dam_sim.run_until(SimTime::from_secs(12));

    // Scribe *can* route traffic through non-subscribers (rendezvous
    // routing); whether it does depends on the topology draw, so this is
    // an observation rather than an assertion. The structural fairness
    // contract checked here is DAM's, below.
    let _scribe_unfair = scribe_sim.nodes().any(|(id, node)| {
        node.ledger().totals().forwarded_msgs > 0 && !node.is_subscriber(topic_of(id.index()))
    });
    // In ideal DAM, only group members (subscribers) forward dissemination
    // traffic.
    for (id, node) in dam_sim.nodes() {
        if node.ledger().totals().forwarded_msgs > 0 {
            assert!(
                node.is_group_member(topic_of(id.index())),
                "{id} forwarded without membership"
            );
        }
    }
}
