//! # fed — Fair Event Dissemination
//!
//! A reproduction of *"Towards Fair Event Dissemination"* (S. Baehni,
//! R. Guerraoui, B. Koldehofe, M. Monod — ICDCS 2007) as a working system:
//! a fairness-adaptive gossip publish/subscribe protocol, every baseline
//! architecture the paper analyses, a deterministic discrete-event
//! simulator to run them on, and an experiment suite that regenerates each
//! of the paper's figures as measured tables.
//!
//! This crate is the facade: it re-exports the workspace so applications
//! can depend on a single crate. The layers, bottom to top:
//!
//! | Module | Source crate | Contents |
//! |---|---|---|
//! | [`util`] | `fed-util` | deterministic PRNG, distributions, statistics, fairness indices |
//! | [`sim`] | `fed-sim` | discrete-event simulator: protocols, virtual time, network models, churn |
//! | [`cluster`] | `fed-cluster` | sharded multi-threaded runtime, bit-identical to the sequential engine |
//! | [`telemetry`] | `fed-telemetry` | deterministic streaming time-series observability for both engines |
//! | [`profile`] | `fed-profile` | scheduler profiler: phase timings, stall attribution, Chrome-trace export |
//! | [`pubsub`] | `fed-pubsub` | events, topics, filters, the subscription language |
//! | [`membership`] | `fed-membership` | peer sampling: full oracle and Cyclon views |
//! | [`dht`] | `fed-dht` | Pastry-like ring for the structured baselines |
//! | [`core`] | `fed-core` | **the paper's contribution**: fairness ledger, basic + fair gossip, controllers, audits, subscription walks |
//! | [`baselines`] | `fed-baselines` | broker, Scribe, DKS, data-aware multicast, SplitStream |
//! | [`metrics`] | `fed-metrics` | delivery audits, fairness reports, result tables |
//! | [`workload`] | `fed-workload` | interest profiles, publication schedules, churn traces, generated sweeps |
//! | [`sweep`] | `fed-sweep` | sweep summaries, Pareto frontiers, the `BENCH_sweep.json` format |
//! | [`experiments`] | `fed-experiments` | one module per paper figure/claim |
//!
//! ## Quickstart
//!
//! ```
//! use fed::core::gossip::{GossipCmd, GossipConfig, GossipNode};
//! use fed::membership::FullMembership;
//! use fed::pubsub::{Event, EventId, TopicId};
//! use fed::sim::network::NetworkModel;
//! use fed::sim::{NodeId, SimDuration, SimTime, Simulation};
//!
//! let n = 16;
//! let cfg = GossipConfig::fair(4, 16, SimDuration::from_millis(100));
//! let mut sim = Simulation::new(n, NetworkModel::default(), 1, move |id, _| {
//!     GossipNode::new(id, cfg.clone(), FullMembership::new(id, n))
//! });
//! let topic = TopicId::new(0);
//! for i in 0..n as u32 {
//!     sim.schedule_command(SimTime::ZERO, NodeId::new(i), GossipCmd::SubscribeTopic(topic));
//! }
//! sim.schedule_command(
//!     SimTime::from_millis(100),
//!     NodeId::new(0),
//!     GossipCmd::Publish(Event::bare(EventId::new(0, 1), topic)),
//! );
//! sim.run_until(SimTime::from_secs(3));
//! assert!(sim.nodes().all(|(_, node)| node.deliveries().len() == 1));
//! ```
//!
//! Run `cargo run --release -p fed-experiments` to regenerate every paper
//! table; see EXPERIMENTS.md for the recorded results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fed_baselines as baselines;
pub use fed_cluster as cluster;
pub use fed_core as core;
pub use fed_dht as dht;
pub use fed_experiments as experiments;
pub use fed_membership as membership;
pub use fed_metrics as metrics;
pub use fed_profile as profile;
pub use fed_pubsub as pubsub;
pub use fed_sim as sim;
pub use fed_sweep as sweep;
pub use fed_telemetry as telemetry;
pub use fed_util as util;
pub use fed_workload as workload;
