//! Offline shim of the [proptest](https://crates.io/crates/proptest) API.
//!
//! The workspace builds in environments without a crates.io registry, so
//! this crate re-implements exactly the subset of proptest the test suites
//! use: seeded random case generation for the `proptest!` macro, strategy
//! combinators (`prop_map`, `prop_filter`, `prop_oneof!`, `prop_recursive`,
//! tuples, `collection::vec`, character-class string patterns) and the
//! `prop_assert*` / `prop_assume!` control-flow macros.
//!
//! Differences from the real crate: no shrinking (failures report the
//! generated inputs but are not minimised), no persisted failure corpus,
//! and string strategies support only character-class patterns like
//! `"[a-z0-9_]{0,8}"` and `".*"`. Seeds derive from the test's module path,
//! so runs are deterministic.

#![forbid(unsafe_code)]

use std::sync::Arc;

/// Error type threaded through a proptest case body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case's inputs were rejected by `prop_assume!`; try another case.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Result type of a proptest case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The real crate defaults to 256; 64 keeps CI fast while still
        // exercising the properties broadly.
        ProptestConfig { cases: 64 }
    }
}

pub mod test_runner {
    //! The deterministic case generator driving `proptest!`.

    /// SplitMix64-based generator; seeded from the test's name so every run
    /// of a given test explores the same case sequence.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds a generator from an arbitrary string (the test path).
        pub fn for_test(name: &str) -> Self {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be positive.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            const SCALE: f64 = 1.0 / ((1u64 << 53) as f64);
            ((self.next_u64() >> 11) as f64) * SCALE
        }
    }
}

use test_runner::TestRng;

/// A generator of random values of type `Value`.
///
/// Unlike the real crate there is no value tree or shrinking: a strategy is
/// just a cloneable object that can produce one value per call.
pub trait Strategy: Clone {
    /// The type of value this strategy produces.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> O + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`, retrying on rejection.
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Value) -> bool + Clone,
        Self: Sized,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Type-erases the strategy behind an `Arc`.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }

    /// Builds recursive values: at each of `depth` levels, either stays at
    /// the already-built strategy or wraps it via `recurse`. The extra size
    /// parameters of the real API are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth.max(1) {
            let wrapped = recurse(cur).boxed();
            cur = BoxedStrategy::union(vec![leaf.clone(), wrapped]);
        }
        cur
    }
}

/// The `prop_map` combinator.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + Clone,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The `prop_filter` combinator.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + Clone,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: 'static> BoxedStrategy<T> {
    /// Chooses uniformly among `arms` each time a value is generated.
    pub fn union(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "union of zero strategies");
        Union { arms }.boxed()
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate_dyn(rng)
    }
}

/// Uniform choice among boxed strategies; what `prop_oneof!` builds.
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

/// Strategy producing `value.clone()` every time.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values only, matching the real crate's default.
        rng.unit_f64() * 2e9 - 1e9
    }
}

/// Strategy for any value of `T` (`any::<u64>()`, ...).
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                (lo + rng.below((hi - lo + 1) as u64) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        string::generate_pattern(self, rng)
    }
}

pub mod string {
    //! Character-class pattern strings (`"[a-z_]{0,8}"`, `".*"`).

    use super::test_runner::TestRng;

    enum Atom {
        Class(Vec<char>),
        AnyChar,
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pieces = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let atom = match chars[i] {
                '[' => {
                    let mut set = Vec::new();
                    i += 1;
                    while i < chars.len() && chars[i] != ']' {
                        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                            let (lo, hi) = (chars[i], chars[i + 2]);
                            for c in lo..=hi {
                                set.push(c);
                            }
                            i += 3;
                        } else {
                            set.push(chars[i]);
                            i += 1;
                        }
                    }
                    i += 1; // closing ']'
                    Atom::Class(set)
                }
                '.' => {
                    i += 1;
                    Atom::AnyChar
                }
                '\\' => {
                    i += 1;
                    let c = chars.get(i).copied().unwrap_or('\\');
                    i += 1;
                    Atom::Literal(c)
                }
                c => {
                    i += 1;
                    Atom::Literal(c)
                }
            };
            // Optional quantifier.
            let (min, max) = match chars.get(i) {
                Some('*') => {
                    i += 1;
                    (0, 8)
                }
                Some('+') => {
                    i += 1;
                    (1, 8)
                }
                Some('?') => {
                    i += 1;
                    (0, 1)
                }
                Some('{') => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated {} quantifier")
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((lo, hi)) => (
                            lo.trim().parse().expect("bad quantifier"),
                            hi.trim().parse().expect("bad quantifier"),
                        ),
                        None => {
                            let k = body.trim().parse().expect("bad quantifier");
                            (k, k)
                        }
                    }
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching the (subset) pattern.
    pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::AnyChar => out.push((0x20u8 + rng.below(0x5f) as u8) as char),
                    Atom::Class(set) => {
                        assert!(!set.is_empty(), "empty character class");
                        out.push(set[rng.below(set.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = Strategy::generate(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector strategy of `element` values with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy for `BTreeSet`s with target sizes drawn from `size`.
    #[derive(Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let target = Strategy::generate(&self.size, rng);
            let mut set = std::collections::BTreeSet::new();
            // Duplicates shrink the set below target, as in the real crate;
            // bound the attempts so narrow element domains terminate.
            for _ in 0..target.saturating_mul(8).max(8) {
                if set.len() >= target {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }

    /// A set strategy of `element` values with a target size in `size`.
    pub fn btree_set<S: Strategy>(element: S, size: std::ops::Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }
}

/// Chooses uniformly among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::BoxedStrategy::union(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Asserts a condition inside a proptest case, failing the case (not
/// panicking directly) so enclosing `Result` plumbing keeps working.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts two expressions are equal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l == r, "{} ({:?} != {:?})", format!($($fmt)*), l, r);
    }};
}

/// Asserts two expressions are unequal inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(l != r, "{} ({:?} == {:?})", format!($($fmt)*), l, r);
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property-based tests; see the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::for_test(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __case: u32 = 0;
                let mut __rejects: u32 = 0;
                while __case < __config.cases {
                    let ($($pat,)+) =
                        $crate::Strategy::generate(&__strategies, &mut __rng);
                    let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match __outcome {
                        Ok(()) => __case += 1,
                        Err($crate::TestCaseError::Reject(_)) => {
                            __rejects += 1;
                            assert!(
                                __rejects < __config.cases.saturating_mul(20).max(1_000),
                                "too many prop_assume! rejections in {}",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {} of {} failed: {}", __case, stringify!($name), msg);
                        }
                    }
                }
            }
        )*
    };
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, Any,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };

    /// Mirror of the `prop` module alias from the real prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}
