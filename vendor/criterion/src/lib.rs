//! Offline shim of the [criterion](https://crates.io/crates/criterion) API.
//!
//! Provides the subset the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `criterion_group!`/`criterion_main!` — with a simple wall-clock
//! measurement loop: warm-up, then timed batches, reporting the mean
//! iteration time and iterations/second on stdout. There is no statistical
//! analysis, plotting or result persistence; swap in the real crate when a
//! registry is available.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for a parameterised benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Builds an id from a parameter value alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly and records the mean iteration time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: let caches/allocators settle and estimate cost.
        let warmup_start = Instant::now();
        let mut warmup_iters = 0u64;
        while warmup_start.elapsed() < self.measurement_time / 4 {
            black_box(routine());
            warmup_iters += 1;
            if warmup_iters >= 1_000_000 {
                break;
            }
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < self.measurement_time || iters == 0 {
            black_box(routine());
            iters += 1;
            if iters >= 10_000_000 {
                break;
            }
        }
        self.iters_done = iters;
        self.elapsed = start.elapsed();
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    /// Group-local budget, like real criterion: it dies with the group
    /// instead of leaking into later groups.
    measurement_time: Duration,
}

impl<'a> BenchmarkGroup<'a> {
    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the wall-clock budget for each benchmark in this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        let budget = self.measurement_time;
        self.criterion.run_one(&full, budget, &mut f);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        let budget = self.measurement_time;
        self.criterion.run_one(&full, budget, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            // Short budget: the shim reports indicative numbers, and CI
            // machines run every bench target.
            measurement_time: Duration::from_millis(400),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let measurement_time = self.measurement_time;
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            measurement_time,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = id.to_string();
        let budget = self.measurement_time;
        self.run_one(&full, budget, &mut f);
        self
    }

    fn run_one(&mut self, name: &str, budget: Duration, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measurement_time: budget,
        };
        f(&mut b);
        if b.iters_done == 0 {
            println!("{name:<48} (no measurement)");
            return;
        }
        let per_iter = b.elapsed.as_secs_f64() / b.iters_done as f64;
        println!(
            "{name:<48} {:>12} {:>14.1} iters/s",
            format_time(per_iter),
            1.0 / per_iter,
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} us", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
